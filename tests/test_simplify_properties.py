"""Property-based coverage of :func:`repro.symbolic.simplify.simplify`.

Random affine expressions over a small symbol pool are checked for the
two properties the rest of the system relies on:

* **idempotence** — ``simplify(simplify(e))`` is structurally equal to
  ``simplify(e)`` (canonical forms are fixed points); and
* **evaluation equivalence** — ``simplify(e)`` evaluates to exactly the
  same rational value as ``e`` under random integer environments.

Evaluation is exact (``Fraction``), so equivalence is equality, not an
epsilon comparison.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.symbolic.expr import Add, Const, Div, Expr, Mul, Neg, Sub, Sym, const
from repro.symbolic.simplify import collect_affine, is_affine_in, simplify, substitute

SYMBOLS = ("i", "j", "k", "n", "m")


def random_affine(rng: random.Random, depth: int = 4) -> Expr:
    """A random expression that is affine in :data:`SYMBOLS`."""
    if depth == 0 or rng.random() < 0.25:
        if rng.random() < 0.5:
            return Sym(rng.choice(SYMBOLS))
        return Const(Fraction(rng.randint(-5, 5)))
    shape = rng.randrange(5)
    if shape == 0:
        return Add(random_affine(rng, depth - 1), random_affine(rng, depth - 1))
    if shape == 1:
        return Sub(random_affine(rng, depth - 1), random_affine(rng, depth - 1))
    if shape == 2:
        return Neg(random_affine(rng, depth - 1))
    if shape == 3:
        # Multiplication by a constant keeps the expression affine.
        factor = Const(Fraction(rng.randint(-4, 4)))
        body = random_affine(rng, depth - 1)
        return Mul(factor, body) if rng.random() < 0.5 else Mul(body, factor)
    divisor = Const(Fraction(rng.choice([-3, -2, 2, 3, 4])))
    return Div(random_affine(rng, depth - 1), divisor)


def evaluate(expr: Expr, env) -> Fraction:
    """Exact reference evaluation with rational arithmetic."""
    if isinstance(expr, Const):
        return Fraction(expr.value)
    if isinstance(expr, Sym):
        return Fraction(env[expr.name])
    if isinstance(expr, Add):
        return evaluate(expr.left, env) + evaluate(expr.right, env)
    if isinstance(expr, Sub):
        return evaluate(expr.left, env) - evaluate(expr.right, env)
    if isinstance(expr, Mul):
        return evaluate(expr.left, env) * evaluate(expr.right, env)
    if isinstance(expr, Div):
        return evaluate(expr.left, env) / evaluate(expr.right, env)
    if isinstance(expr, Neg):
        return -evaluate(expr.operand, env)
    raise TypeError(f"unexpected node {expr!r}")


def random_env(rng: random.Random):
    return {name: rng.randint(-7, 7) for name in SYMBOLS}


@pytest.mark.parametrize("seed", range(60))
def test_simplify_idempotent_and_evaluation_equivalent(seed):
    rng = random.Random(seed)
    expr = random_affine(rng)
    simplified = simplify(expr)
    assert simplify(simplified) == simplified, f"not a fixed point: {expr!r}"
    for _ in range(5):
        env = random_env(rng)
        assert evaluate(expr, env) == evaluate(simplified, env), (
            f"simplify changed the value of {expr!r} under {env}"
        )


@pytest.mark.parametrize("seed", range(61, 91))
def test_difference_of_equal_expressions_is_zero(seed):
    rng = random.Random(seed)
    expr = random_affine(rng)
    assert simplify(Sub(expr, expr)) == Const(Fraction(0))


@pytest.mark.parametrize("seed", range(92, 122))
def test_doubling_equals_scaling(seed):
    rng = random.Random(seed)
    expr = random_affine(rng)
    assert simplify(Add(expr, expr)) == simplify(Mul(Const(Fraction(2)), expr))


@pytest.mark.parametrize("seed", range(123, 153))
def test_commuted_sum_canonicalises_identically(seed):
    rng = random.Random(seed)
    left = random_affine(rng, depth=3)
    right = random_affine(rng, depth=3)
    assert simplify(Add(left, right)) == simplify(Add(right, left))


@pytest.mark.parametrize("seed", range(154, 174))
def test_random_affine_is_recognised_as_affine(seed):
    rng = random.Random(seed)
    expr = random_affine(rng)
    assert is_affine_in(expr, SYMBOLS)
    decomposition = collect_affine(expr, SYMBOLS)
    assert decomposition is not None
    coeffs, rest = decomposition
    # Reconstructing from the decomposition preserves the value.
    env = random_env(rng)
    reconstructed = sum(
        (coeff * Fraction(env[name]) for name, coeff in coeffs.items()),
        start=evaluate(rest, env),
    )
    assert reconstructed == evaluate(expr, env)


@pytest.mark.parametrize("seed", range(175, 195))
def test_substitute_then_simplify_matches_evaluation(seed):
    rng = random.Random(seed)
    expr = random_affine(rng)
    env = random_env(rng)
    bound = substitute(expr, {name: const(value) for name, value in env.items()})
    folded = simplify(bound)
    assert folded == Const(evaluate(expr, env)) or isinstance(folded, Const)
    assert Fraction(folded.value) == evaluate(expr, env)
