"""The Tier-3 unbounded inductive prover and its wiring.

Covers the proof rules clause by clause, the linear-arithmetic engine,
the certificate artifact and its replay revalidation, the three-tier
verdict, agreement between the inductive and bounded verdicts, and the
prover's effect on the CEGIS search (prefer provable candidates, fall
back without losing translations).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import identify_candidates, parse_source
from repro.frontend.lowering import lower_candidate
from repro.predicates.language import (
    Bound,
    OutEq,
    Postcondition,
    QuantifiedConstraint,
)
from repro.suites.base import pair_1d_2d, stencil_fortran
from repro.symbolic.expr import as_expr, cell, sym
from repro.symbolic.simplify import simplify
from repro.synthesis.cegis import synthesize_kernel
from repro.vcgen.hoare import CandidateSummary, generate_vc
from repro.verification.bounded import BoundedVerifier
from repro.verification.inductive import (
    INDUCTIVE_PROVER_VERSION,
    InductiveProver,
    Verdict,
    _FMEngine,
    _linearize_ge0,
    certificate_from_json,
    certificate_to_json,
    make_certificate,
    revalidate_certificate,
    verify_with_proof,
)

TWO_POINT = """
procedure sten(imin,imax,jmin,jmax,a,b)
real (kind=8), dimension(imin:imax,jmin:jmax) :: a
real (kind=8), dimension(imin:imax,jmin:jmax) :: b
do j=jmin,jmax
do i=imin+1,imax
a(i,j) = b(i,j) + b(i-1,j)
enddo
enddo
end procedure
"""

ROTATING = stencil_fortran("rot", 2, pair_1d_2d(), use_temporary=True)
TILED_1D = stencil_fortran("tiled1d", 1, [((0,), 1.0), ((-1,), 0.5)], tile={0: 4})


def _kernel(source: str):
    return lower_candidate(identify_candidates(parse_source(source)).candidates[0])


@pytest.fixture(scope="module")
def two_point_setup():
    kernel = _kernel(TWO_POINT)
    result = synthesize_kernel(kernel, seed=1, verifier_environments=1, inductive=True)
    vc = generate_vc(kernel)
    return kernel, vc, result


# ---------------------------------------------------------------------------
# Linear arithmetic engine
# ---------------------------------------------------------------------------


class TestLinearEngine:
    def _fm(self, ints):
        return _FMEngine(set(ints), lambda: None)

    def _lin(self, expr, strict=False):
        return _linearize_ge0(simplify(expr), strict)

    def test_simple_entailment(self):
        # x >= 2 and y >= x entail y >= 2 (negation infeasible).
        fm = self._fm({"x", "y"})
        x, y = sym("x"), sym("y")
        gamma = [self._lin(x - 2), self._lin(y - x)]
        assert fm.infeasible(gamma + [self._lin(2 - y, strict=True)])

    def test_feasible_system_is_not_refuted(self):
        fm = self._fm({"x", "y"})
        x, y = sym("x"), sym("y")
        assert not fm.infeasible([self._lin(x - 2), self._lin(y - x), self._lin(y - 2)])

    def test_strict_integer_tightening(self):
        # 0 < x < 1 has rational solutions but no integer ones; the
        # tightening only applies when the atom is known integral.
        x = sym("x")
        constraints = [self._lin(x, strict=True), self._lin(as_expr(1) - x, strict=True)]
        assert self._fm({"x"}).infeasible(constraints)
        assert not self._fm(set()).infeasible(constraints)

    def test_gcd_tightening_detects_integer_gaps(self):
        # 4m <= 3 and m >= 1 has rational solutions but no integer one.
        fm = self._fm({"it_m"})
        m = sym("it_m")
        assert fm.infeasible([self._lin(3 - as_expr(4) * m), self._lin(m - 1)])

    def test_alignment_contradiction(self):
        # kt = klo+1+4m, m >= 0, kt >= khi, khi >= klo+2, kt <= klo+4:
        # rationally feasible (m = 1/2), integrally infeasible.
        fm = self._fm({"kt", "klo", "khi", "it_kt"})
        kt, klo, khi, m = sym("kt"), sym("klo"), sym("khi"), sym("it_kt")
        gamma = [
            self._lin(khi - klo - 2),
            self._lin(m),
            self._lin(kt - klo - 1 - as_expr(4) * m),
            self._lin(as_expr(4) * m + klo - kt + 1),
            self._lin(kt - khi + 1, strict=True),
            self._lin(klo + 4 - kt),
        ]
        assert fm.infeasible(gamma)
        assert fm.infeasible(gamma, focus_last=True)


# ---------------------------------------------------------------------------
# Proof rules on real kernels
# ---------------------------------------------------------------------------


class TestProofRules:
    def test_running_example_fully_proves(self, two_point_setup):
        kernel, vc, result = two_point_setup
        outcome = InductiveProver(vc).prove(result.candidate)
        assert outcome.verdict is Verdict.PROVED
        assert all(c.proved for c in outcome.clauses)
        # Every proof-rule family is exercised: initiation, preservation
        # (the straightline body clause), inner-loop exit and the final
        # postcondition clause.
        names = {c.clause for c in outcome.clauses}
        assert {"j.init", "j.i.init", "j.i.straightline", "j.after.straightline"} <= names

    def test_rotating_temporary_scalar_equalities_prove(self):
        kernel = _kernel(ROTATING)
        result = synthesize_kernel(kernel, seed=1, verifier_environments=1, inductive=True)
        assert result.proved
        # The rotating temporary requires at least one scalar equality in
        # the inner invariant; without the equality rules the body clause
        # could not be discharged.
        assert any(inv.equalities for inv in result.candidate.invariants.values())

    def test_prover_steers_search_away_from_vacuous_bounds(self):
        # Without the prover, CEGIS settles for a postcondition whose
        # quantifier bounds are only right on the sampled grid sizes
        # (here: a v1 lower bound using ilo instead of jlo).  With the
        # prover the search continues to the universally correct bounds.
        kernel = _kernel(ROTATING)
        bounded_only = synthesize_kernel(kernel, seed=1, verifier_environments=1)
        proved = synthesize_kernel(kernel, seed=1, verifier_environments=1, inductive=True)
        bad = [b.describe() for c in bounded_only.post.conjuncts for b in c.bounds]
        good = [b.describe() for c in proved.post.conjuncts for b in c.bounds]
        assert "(ilo + 1) <= v1 <= (jhi - 1)" in bad
        assert "(jlo + 1) <= v1 <= (jhi - 1)" in good

    @pytest.mark.slow
    def test_strided_tile_loop_proves_with_exact_slabs(self):
        # The hand-tiled kernel: a strided outer loop with min() inner
        # bounds.  Exercises the exact strided slab bounds, the counter
        # alignment facts, min/max case analysis and the boundary
        # witness search.
        kernel = _kernel(TILED_1D)
        result = synthesize_kernel(kernel, seed=0, verifier_environments=1, inductive=True)
        assert result.proved
        assert result.candidate.strided_exact

    def test_wrong_candidate_is_never_proved(self, two_point_setup):
        kernel, vc, result = two_point_setup
        prover = InductiveProver(vc)
        good = result.candidate
        # Perturb the postcondition right-hand side: b[i,j] + 2*b[i-1,j].
        conjunct = good.post.conjuncts[0]
        wrong_rhs = simplify(conjunct.out_eq.rhs + cell("b", sym("v0") - 1, sym("v1")))
        wrong = CandidateSummary(
            post=Postcondition(
                (
                    QuantifiedConstraint(
                        bounds=conjunct.bounds,
                        out_eq=OutEq("a", conjunct.out_eq.indices, wrong_rhs),
                    ),
                )
            ),
            invariants=good.invariants,
            strided_exact=good.strided_exact,
        )
        outcome = prover.prove(wrong)
        assert outcome.verdict is not Verdict.PROVED

    def test_verify_with_proof_three_tier_verdicts(self, two_point_setup):
        kernel, vc, result = two_point_setup
        verifier = BoundedVerifier(vc, num_environments=1, seed=1)
        prover = InductiveProver(vc)
        verdict, bounded, outcome = verify_with_proof(verifier, prover, result.candidate)
        assert verdict is Verdict.PROVED and bounded.ok and outcome.proved
        verdict_np, bounded_np, outcome_np = verify_with_proof(verifier, None, result.candidate)
        assert verdict_np is Verdict.BOUNDED_ONLY and outcome_np is None


# ---------------------------------------------------------------------------
# Agreement between the tiers (the prover must never out-claim tier 2)
# ---------------------------------------------------------------------------


_AGREEMENT_SETUP: dict = {}


def _agreement_setup():
    """Build the shared kernel/verifier/prover once across hypothesis examples."""
    if not _AGREEMENT_SETUP:
        kernel = _kernel(TWO_POINT)
        result = synthesize_kernel(kernel, seed=1, verifier_environments=1, inductive=True)
        vc = generate_vc(kernel)
        _AGREEMENT_SETUP.update(
            kernel=kernel,
            result=result,
            verifier=BoundedVerifier(vc, num_environments=1, seed=1),
            prover=InductiveProver(vc),
        )
    return _AGREEMENT_SETUP


class TestTierAgreement:
    @settings(max_examples=15, deadline=None)
    @given(
        di=st.integers(min_value=-2, max_value=2),
        dj=st.integers(min_value=-2, max_value=2),
        scale=st.sampled_from([1, 2, 3]),
    )
    def test_inductive_never_proves_what_bounded_refutes(self, di, dj, scale):
        """Property: on arbitrary perturbations of a verified summary the
        prover and the bounded verifier never disagree in the dangerous
        direction — anything the bounded tier refutes stays unproved."""
        setup = _agreement_setup()
        result = setup["result"]
        verifier = setup["verifier"]
        prover = setup["prover"]

        good = result.candidate
        conjunct = good.post.conjuncts[0]
        rhs = simplify(
            as_expr(scale) * cell("b", sym("v0") + di, sym("v1") + dj)
            + cell("b", sym("v0") - 1, sym("v1"))
        )
        candidate = CandidateSummary(
            post=Postcondition(
                (
                    QuantifiedConstraint(
                        bounds=conjunct.bounds,
                        out_eq=OutEq("a", conjunct.out_eq.indices, rhs),
                    ),
                )
            ),
            invariants=good.invariants,
            strided_exact=good.strided_exact,
        )
        bounded = verifier.verify(candidate)
        outcome = prover.prove(candidate)
        if not bounded.ok:
            assert outcome.verdict is not Verdict.PROVED
        if di == 0 and dj == 0 and scale == 1:
            # The unperturbed candidate must stay proved and bounded-ok.
            assert bounded.ok and outcome.proved

    def test_table1_cross_section_agreement(self):
        """Both tiers accept the synthesized summary for a cross-section
        of suite kernels, and the prover reaches Proved on all of them."""
        from repro.suites.registry import representative_cases

        cases = [c for c in representative_cases(per_suite=1) if c.expect_translated]
        # The 5-D TERRA kernel alone costs ~30s to prove; the quick
        # cross-section sticks to the 2-D/3-D representatives (TERRA is
        # covered by the benchmark harness).
        cases = [c for c in cases if c.suite != "TERRA"]
        for case in cases[:3]:
            kernel = _kernel(case.source)
            result = synthesize_kernel(
                kernel, seed=0, verifier_environments=1, inductive=True
            )
            vc = generate_vc(kernel)
            assert BoundedVerifier(vc, num_environments=1, seed=0).verify(
                result.candidate
            ).ok, case.name
            assert result.proved, case.name


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------


class TestCertificates:
    def test_round_trip_and_revalidation(self, two_point_setup):
        kernel, vc, result = two_point_setup
        certificate = result.certificate
        assert certificate is not None and certificate.proved
        assert certificate.prover_version == INDUCTIVE_PROVER_VERSION
        decoded = certificate_from_json(certificate_to_json(certificate))
        assert decoded == certificate
        assert revalidate_certificate(decoded, kernel, result.candidate)

    def test_revalidation_rejects_wrong_candidate(self, two_point_setup):
        kernel, vc, result = two_point_setup
        certificate = result.certificate
        conjunct = result.candidate.post.conjuncts[0]
        other = CandidateSummary(
            post=Postcondition(
                (
                    QuantifiedConstraint(
                        bounds=conjunct.bounds,
                        out_eq=OutEq(
                            "a",
                            conjunct.out_eq.indices,
                            simplify(conjunct.out_eq.rhs + as_expr(1)),
                        ),
                    ),
                )
            ),
            invariants=result.candidate.invariants,
        )
        assert not revalidate_certificate(certificate, kernel, other)

    def test_revalidation_rejects_forged_proved_label(self, two_point_setup):
        kernel, vc, result = two_point_setup
        prover = InductiveProver(vc)
        # A candidate the prover cannot prove, wrapped in a certificate
        # that *claims* proved: digests match, so only the re-proof can
        # catch the forgery.
        conjunct = result.candidate.post.conjuncts[0]
        unprovable = CandidateSummary(
            post=Postcondition(
                (
                    QuantifiedConstraint(
                        bounds=conjunct.bounds,
                        out_eq=OutEq(
                            "a",
                            conjunct.out_eq.indices,
                            simplify(conjunct.out_eq.rhs + cell("b", sym("v0"), sym("v1"))),
                        ),
                    ),
                )
            ),
            invariants=result.candidate.invariants,
        )
        outcome = prover.prove(unprovable)
        forged = make_certificate(kernel, unprovable, outcome)
        assert not forged.proved
        forged.proved = True
        assert not revalidate_certificate(forged, kernel, unprovable)

    def test_partial_outcomes_never_promote_to_proved(self, two_point_setup):
        kernel, vc, result = two_point_setup
        prover = InductiveProver(vc)
        outcome = prover.prove(
            result.candidate, only=lambda c: c.target.kind == "post"
        )
        assert outcome.proved  # the selected clauses proved...
        certificate = make_certificate(kernel, result.candidate, outcome)
        assert not certificate.proved  # ...but skipped clauses block the label
