"""Concrete-symbolic execution of candidate kernels (§4.2, first step).

Loop bounds, array sizes and every other integer input are set to small
concrete values, while floating-point scalars and all array contents
stay symbolic.  Executing the kernel then turns every written output
cell into a symbolic formula over the *input* array cells and scalar
symbols — exactly the observations inductive template generation
anti-unifies.

Besides the final state, the interpreter records, for every loop and
every iteration, a snapshot of the scalar environment taken at the top
of the iteration.  These snapshots are what the synthesizer uses to
discover the scalar equalities (rotating-register temporaries) its loop
invariants need.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir import nodes as ir
from repro.ir.analysis import collect_loops, free_scalar_inputs, loop_counters, output_arrays
from repro.semantics.evalexpr import EvalError, eval_ir_expr
from repro.semantics.state import State, Value, fresh_symbolic_array, require_int
from repro.symbolic.expr import Expr, sym


class SymbolicExecutionError(Exception):
    """Raised when a kernel cannot be executed concrete-symbolically."""


@dataclass
class IterationSnapshot:
    """Scalar environment observed at the top of one loop iteration."""

    loop_id: str
    counters: Dict[str, int]
    scalars: Dict[str, Value]


@dataclass
class CellObservation:
    """Final value of one written output cell."""

    array: str
    index: Tuple[int, ...]
    value: Expr


@dataclass
class SymbolicRun:
    """The result of one concrete-symbolic execution."""

    int_env: Dict[str, int]
    state: State
    observations: List[CellObservation]
    snapshots: List[IterationSnapshot]

    def observations_for(self, array: str) -> List[CellObservation]:
        return [obs for obs in self.observations if obs.array == array]

    def snapshots_for(self, loop_id: str) -> List[IterationSnapshot]:
        return [snap for snap in self.snapshots if snap.loop_id == loop_id]


# Whole-run iteration budget for concrete-symbolic execution; shared with
# the compiled recording executor (:mod:`repro.compile`).
SYMBOLIC_EXECUTION_BUDGET = 200_000


class _RecordingExecutor:
    """IR executor that records iteration-start snapshots per loop."""

    def __init__(self, kernel: ir.Kernel, max_iterations: int = SYMBOLIC_EXECUTION_BUDGET):
        self.kernel = kernel
        self.max_iterations = max_iterations
        self.snapshots: List[IterationSnapshot] = []
        self._loop_ids: Dict[int, str] = {}
        self._counter_counts: Dict[str, int] = {}
        self._iterations = 0
        for loop in collect_loops(kernel.body):
            count = self._counter_counts.get(loop.counter, 0)
            self._counter_counts[loop.counter] = count + 1
            loop_id = loop.counter if count == 0 else f"{loop.counter}#{count}"
            self._loop_ids[id(loop)] = loop_id

    def loop_id(self, loop: ir.Loop) -> str:
        return self._loop_ids[id(loop)]

    def run(self, state: State) -> State:
        self._execute(self.kernel.body, state)
        return state

    def _execute(self, stmt: ir.Stmt, state: State) -> None:
        if isinstance(stmt, ir.Block):
            for inner in stmt.statements:
                self._execute(inner, state)
            return
        if isinstance(stmt, ir.Assign):
            state.set_scalar(stmt.target, eval_ir_expr(stmt.value, state))
            return
        if isinstance(stmt, ir.ArrayStore):
            indices = tuple(
                require_int(eval_ir_expr(i, state), context=f"store index of {stmt.array}")
                for i in stmt.indices
            )
            state.array(stmt.array).store(indices, eval_ir_expr(stmt.value, state))
            return
        if isinstance(stmt, ir.Loop):
            lower = require_int(eval_ir_expr(stmt.lower, state), context="loop lower bound")
            upper = require_int(eval_ir_expr(stmt.upper, state), context="loop upper bound")
            if stmt.step == 0:
                raise SymbolicExecutionError("loop step must be non-zero")
            counter = lower
            loop_id = self.loop_id(stmt)
            while counter <= upper if stmt.step > 0 else counter >= upper:
                state.set_scalar(stmt.counter, counter)
                self._record(loop_id, state)
                self._execute(stmt.body, state)
                counter += stmt.step
                self._iterations += 1
                if self._iterations > self.max_iterations:
                    raise SymbolicExecutionError("symbolic execution exceeded the iteration budget")
            state.set_scalar(stmt.counter, counter)
            return
        if isinstance(stmt, ir.If):
            raise SymbolicExecutionError(
                "kernels with conditionals are not executed symbolically by the default pipeline"
            )
        raise SymbolicExecutionError(f"cannot execute statement {stmt!r}")

    def _record(self, loop_id: str, state: State) -> None:
        counters: Dict[str, int] = {}
        scalars: Dict[str, Value] = {}
        counter_names = set(loop_counters(self.kernel))
        for name, value in state.scalars.items():
            if name in counter_names:
                try:
                    counters[name] = require_int(value)
                except TypeError:
                    continue
            else:
                scalars[name] = value
        self.snapshots.append(IterationSnapshot(loop_id=loop_id, counters=counters, scalars=scalars))


def build_symbolic_state(kernel: ir.Kernel, int_env: Dict[str, int]) -> State:
    """Build the initial state: concrete integers, symbolic floats and arrays."""
    state = State()
    for decl in kernel.scalars:
        if decl.scalar_type == "integer":
            if decl.name in int_env:
                state.set_scalar(decl.name, int_env[decl.name])
        else:
            state.set_scalar(decl.name, sym(decl.name))
    for name, value in int_env.items():
        state.set_scalar(name, value)
    for decl in kernel.arrays:
        state.arrays[decl.name] = fresh_symbolic_array(decl.name)
    return state


def symbolic_execute(
    kernel: ir.Kernel, int_env: Dict[str, int], compile_options=None
) -> SymbolicRun:
    """Execute ``kernel`` with the given concrete integer environment.

    ``compile_options`` selects the evaluation backend; when enabled the
    kernel body runs through the closure-compiled recording executor
    (:class:`repro.compile.CompiledRecordingExecutor`), which is
    bit-identical to the interpreted one.
    """
    state = build_symbolic_state(kernel, int_env)
    executor = _RecordingExecutor(kernel)
    if compile_options is not None and compile_options.enabled:
        from repro.compile import CompiledRecordingExecutor

        compiled = CompiledRecordingExecutor(kernel, compile_options)
        compiled.run(state, executor._record)
    else:
        executor.run(state)
    observations: List[CellObservation] = []
    for array in output_arrays(kernel):
        for index in state.array(array).written_indices():
            value = state.array(array).load(index)
            if not isinstance(value, Expr):
                from repro.symbolic.expr import as_expr

                value = as_expr(value)
            observations.append(CellObservation(array=array, index=index, value=value))
    return SymbolicRun(
        int_env=dict(int_env),
        state=state,
        observations=observations,
        snapshots=executor.snapshots,
    )


# ---------------------------------------------------------------------------
# Choosing concrete integer environments
# ---------------------------------------------------------------------------

def _integer_inputs(kernel: ir.Kernel) -> List[str]:
    counters = set(loop_counters(kernel))
    names: List[str] = []
    for decl in kernel.scalars:
        if decl.scalar_type == "integer" and decl.name not in counters:
            names.append(decl.name)
    for name in free_scalar_inputs(kernel):
        decl_types = {d.name: d.scalar_type for d in kernel.scalars}
        if decl_types.get(name, "integer") == "integer" and name not in names and name not in counters:
            names.append(name)
    return names


def _environment_is_valid(kernel: ir.Kernel, env: Dict[str, int], max_cells: int) -> bool:
    """Check that counter-independent loops run between 2 and ``max_cells`` iterations."""
    state = State(scalars=dict(env))
    counters = set(loop_counters(kernel))
    total = 1
    for loop in collect_loops(kernel.body):
        mentioned = {
            node.name
            for bound in (loop.lower, loop.upper)
            for node in bound.walk()
            if isinstance(node, ir.VarRef)
        }
        if mentioned & counters:
            continue
        try:
            lower = require_int(eval_ir_expr(loop.lower, state))
            upper = require_int(eval_ir_expr(loop.upper, state))
        except (EvalError, TypeError, KeyError):
            return False
        extent = upper - lower + 1
        if extent < 2:
            return False
        total *= max(extent, 1)
        if total > max_cells:
            return False
    return True


def choose_integer_environments(
    kernel: ir.Kernel,
    count: int = 2,
    seed: int = 0,
    max_cells: int = 4096,
    low: int = 0,
    high: int = 6,
) -> List[Dict[str, int]]:
    """Pick ``count`` distinct valid small integer environments for the kernel.

    Follows the paper: loop bounds and array sizes are set to small,
    random concrete values.  An environment is valid when every loop
    with counter-independent bounds executes at least twice (so
    anti-unification sees multiple observations per loop) and the total
    iteration count stays small.
    """
    rng = random.Random(seed)
    names = _integer_inputs(kernel)
    environments: List[Dict[str, int]] = []
    attempts = 0
    while len(environments) < count and attempts < 8000:
        attempts += 1
        env = {name: rng.randint(low, high) for name in names}
        # Also honour the kernel's assume() annotations where possible.
        if not _environment_is_valid(kernel, env, max_cells):
            continue
        if not _satisfies_assumptions(kernel, env):
            continue
        if env in environments:
            continue
        # Prefer environments whose values all differ from earlier ones, so
        # that coincidental equalities (e.g. two runs both using imin = 0) do
        # not leak spurious constants into the templates.  After enough failed
        # attempts accept any valid environment.
        if environments and attempts < 4000:
            if any(
                env[name] == previous[name]
                for previous in environments
                for name in names
            ):
                continue
        environments.append(env)
    if len(environments) < count:
        raise SymbolicExecutionError(
            f"could not find {count} valid integer environments for kernel {kernel.name}"
        )
    return environments


def _satisfies_assumptions(kernel: ir.Kernel, env: Dict[str, int]) -> bool:
    from repro.semantics.evalexpr import eval_ir_condition

    state = State(scalars=dict(env))
    for assumption in kernel.assumptions:
        try:
            if not eval_ir_condition(assumption, state):
                return False
        except EvalError:
            # Assumptions over floats or unbound names cannot be checked here.
            continue
    return True


def run_inductive_executions(
    kernel: ir.Kernel,
    trials: int = 2,
    seed: int = 0,
    compile_options=None,
) -> List[SymbolicRun]:
    """Run the kernel on ``trials`` distinct small integer environments."""
    runs = []
    for env in choose_integer_environments(kernel, count=trials, seed=seed):
        runs.append(symbolic_execute(kernel, env, compile_options=compile_options))
    return runs
