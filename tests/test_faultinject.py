"""The deterministic fault-injection harness itself."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.testing import InjectedFault, InjectionPlan, corrupt_file, fire, write_spec
from repro.testing.faultinject import ENV_VAR, FaultSpec


class TestInactive:
    def test_fire_is_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        fire("worker-job", "anything")  # must not raise

    def test_corrupt_is_noop_without_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_VAR, raising=False)
        target = tmp_path / "file.bin"
        target.write_bytes(b"x" * 100)
        assert corrupt_file("store-file", str(target), target) is False
        assert target.stat().st_size == 100


class TestMatching:
    def _spec(self, **overrides):
        base = dict(
            index=0, site="worker-job", key="heat", kind="raise", occurrences=(1,)
        )
        base.update(overrides)
        return FaultSpec(**base)

    def test_key_is_substring_match(self):
        spec = self._spec()
        assert spec.matches("worker-job", "heat_step_loop0")
        assert not spec.matches("worker-job", "copy_back_loop0")
        assert not spec.matches("site-lift", "heat_step_loop0")

    def test_empty_key_matches_everything(self):
        spec = self._spec(key="")
        assert spec.matches("worker-job", "anything")
        assert spec.matches("worker-job", "")


class TestOccurrences:
    def test_counters_allocate_in_order(self, tmp_path):
        plan = InjectionPlan(
            tmp_path / "state",
            [FaultSpec(index=0, site="s", key="", kind="raise", occurrences=(2,))],
        )
        plan.fire("s")  # occurrence 1: pass
        with pytest.raises(InjectedFault):
            plan.fire("s")  # occurrence 2: fault
        plan.fire("s")  # occurrence 3: pass again

    def test_counters_shared_across_plan_instances(self, tmp_path):
        """Two plans over one state_dir model two processes: a faulted
        occurrence consumed by one is never re-observed by the other."""
        faults = [FaultSpec(index=0, site="s", key="", kind="raise", occurrences=(1,))]
        first = InjectionPlan(tmp_path / "state", faults)
        second = InjectionPlan(tmp_path / "state", faults)
        with pytest.raises(InjectedFault):
            first.fire("s")
        second.fire("s")  # the retry sees occurrence 2 and passes

    def test_independent_specs_count_independently(self, tmp_path):
        plan = InjectionPlan(
            tmp_path / "state",
            [
                FaultSpec(index=0, site="a", key="", kind="raise", occurrences=(1,)),
                FaultSpec(index=1, site="b", key="", kind="raise", occurrences=(1,)),
            ],
        )
        with pytest.raises(InjectedFault):
            plan.fire("a")
        with pytest.raises(InjectedFault):
            plan.fire("b")


class TestTruncate:
    def test_truncate_keeps_requested_bytes(self, tmp_path):
        plan = InjectionPlan(
            tmp_path / "state",
            [
                FaultSpec(
                    index=0,
                    site="store-file",
                    key="",
                    kind="truncate",
                    occurrences=(1,),
                    keep_bytes=7,
                )
            ],
        )
        target = tmp_path / "store.json"
        target.write_bytes(b"0123456789abcdef")
        assert plan.corrupt("store-file", str(target), target) is True
        assert target.read_bytes() == b"0123456"

    def test_truncate_defaults_to_half(self, tmp_path):
        plan = InjectionPlan(
            tmp_path / "state",
            [
                FaultSpec(
                    index=0,
                    site="store-file",
                    key="",
                    kind="truncate",
                    occurrences=(1,),
                )
            ],
        )
        target = tmp_path / "store.json"
        target.write_bytes(b"x" * 100)
        plan.corrupt("store-file", str(target), target)
        assert target.stat().st_size == 50

    def test_fire_never_runs_truncate_specs(self, tmp_path):
        plan = InjectionPlan(
            tmp_path / "state",
            [
                FaultSpec(
                    index=0, site="s", key="", kind="truncate", occurrences=(1,)
                )
            ],
        )
        plan.fire("s")  # truncate is a file fault; fire must skip it
        # The occurrence was not consumed either: corrupt still fires.
        target = tmp_path / "f"
        target.write_bytes(b"xx")
        assert plan.corrupt("s", "", target) is True


class TestEnvPlumbing:
    def test_spec_round_trips_through_env(self, monkeypatch, tmp_path):
        spec = write_spec(
            tmp_path / "faults.json",
            tmp_path / "state",
            [{"site": "worker-job", "key": "bad", "kind": "raise", "occurrences": [1]}],
        )
        monkeypatch.setenv(ENV_VAR, str(spec))
        fire("worker-job", "good_kernel")  # key mismatch: no fault
        with pytest.raises(InjectedFault):
            fire("worker-job", "bad_kernel")

    def test_repointing_env_reloads_plan(self, monkeypatch, tmp_path):
        first = write_spec(
            tmp_path / "first.json",
            tmp_path / "state1",
            [{"site": "a", "kind": "raise", "occurrences": [1]}],
        )
        second = write_spec(
            tmp_path / "second.json",
            tmp_path / "state2",
            [{"site": "b", "kind": "raise", "occurrences": [1]}],
        )
        monkeypatch.setenv(ENV_VAR, str(first))
        with pytest.raises(InjectedFault):
            fire("a")
        monkeypatch.setenv(ENV_VAR, str(second))
        fire("a")  # the first plan is no longer active
        with pytest.raises(InjectedFault):
            fire("b")

    def test_broken_spec_raises_loudly(self, monkeypatch, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{", encoding="utf-8")
        monkeypatch.setenv(ENV_VAR, str(path))
        with pytest.raises(json.JSONDecodeError):
            fire("anything")


class TestProcessDeath:
    """kill/exit faults actually terminate the process (in a child)."""

    @pytest.mark.parametrize(
        "kind,expected",
        [("kill", -9), ("exit", 3)],
        ids=["sigkill", "os-exit"],
    )
    def test_child_dies_with_expected_status(self, kind, expected, tmp_path):
        import os

        import repro.testing.faultinject as fi_mod

        spec = write_spec(
            tmp_path / "faults.json",
            tmp_path / "state",
            [{"site": "worker-job", "kind": kind, "occurrences": [1]}],
        )
        src_dir = os.path.dirname(
            os.path.dirname(os.path.dirname(fi_mod.__file__))
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys; sys.path.insert(0, sys.argv[1])\n"
                "from repro.testing import fire\n"
                "fire('worker-job', 'victim')\n"
                "print('SURVIVED')\n",
                src_dir,
            ],
            env={**os.environ, "REPRO_FAULTS": str(spec)},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == expected
        assert "SURVIVED" not in proc.stdout
