"""Shared fixtures for the benchmark harness.

Set ``REPRO_FULL=1`` to run every kernel of every suite (the full 93-row
reproduction of Tables 1 and 2); by default a representative subset is
used so the whole harness completes in a couple of minutes.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.pipeline import PipelineOptions, STNGPipeline
from repro.pipeline.stng import KernelReport
from repro.suites import all_cases
from repro.suites.base import KernelCase
from repro.suites.registry import representative_cases


def _selected_cases() -> List[KernelCase]:
    if os.environ.get("REPRO_FULL") == "1":
        return all_cases()
    return representative_cases(per_suite=3)


@pytest.fixture(scope="session")
def pipeline() -> STNGPipeline:
    return STNGPipeline(PipelineOptions(autotune_budget=80, verifier_environments=1))


@pytest.fixture(scope="session")
def selected_cases() -> List[KernelCase]:
    return _selected_cases()


@pytest.fixture(scope="session")
def lifted_reports(pipeline, selected_cases) -> Dict[str, List[KernelReport]]:
    """Lift every selected kernel once and share the reports across benchmarks."""
    by_suite: Dict[str, List[KernelReport]] = {}
    for case in selected_cases:
        reports = pipeline.lift_source(
            case.source,
            suite=case.suite,
            stencil_flags={case.procedure_name: case.is_stencil},
            points=case.points,
        )
        for report in reports:
            report.name = case.name
        by_suite.setdefault(case.suite, []).extend(reports)
    return by_suite
