"""C code generation for lowered loop nests (the native backend's front half).

:func:`emit_c_source` turns a :class:`~repro.halide.loopir.LoopNest`
into one self-contained C translation unit exporting a single flat
entry point::

    int64_t repro_kernel_run(const int64_t* lo, const int64_t* hi,
                             double* const* bufs,
                             const int64_t* borig, const int64_t* bext,
                             const double* params,
                             double* out, int64_t* err, int64_t threads);

``lo``/``hi`` are the inclusive per-axis domain bounds, ``bufs`` the
input buffers (float64, C-contiguous) in :attr:`CSource.image_names`
order with their logical origins and extents flattened into
``borig``/``bext``, ``params`` the scalar parameters in
:attr:`CSource.param_names` order, and ``out`` the C-contiguous output
buffer over the domain shape.  ``threads`` is the worker-thread count
for a ``threaded`` translation unit (serial kernels take and ignore it,
keeping one uniform ABI).  The return value is 0 on success; under
``strict_bounds`` an out-of-range load stops execution, fills ``err``
with ``(image index, dimension, offending buffer-relative coordinate)``
and returns 1 — the dispatcher raises the same
:class:`~repro.halide.executor.OutOfBoundsError` the Python backends
raise.

Threaded emission (``emit_c_source(..., threaded=True)``): when the
nest's *outermost* loop is a ``parallel`` chunk band, the band is
dispatched over POSIX threads instead of being serialised.  The entry
point replicates :func:`repro.halide.loopir.chunk_ranges` exactly —
step-aligned, contiguous, disjoint slabs of the outer loop's range —
and hands each slab to a worker function that is the ordinary serial
nest with the outer bounds clamped to the slab.  Because the slabs are
disjoint in the *output* (the outer loop var selects distinct output
coordinates) and every point is computed by exactly the same sequence
of IEEE-754 operations as in serial order, the result is bit-identical
to serial execution by construction, for any thread count.  Strict
bounds errors keep serial semantics too: every worker stops its slab at
the slab's first error in traversal order, and the entry point scans
the slabs *in serial order* after joining, so the reported ``err``
triple is the one serial execution would have reported.

A parallel band that is *not* outermost (``dim_order`` placed other
axes outside it) is threaded too, but only when the static analyzer
certifies it: :func:`repro.analysis.legality.parallel_band_race_free`
must prove the schedule legal and the band's bounds entry-scope pure.
Each worker then runs the whole nest with the band clamped to its slab
— enclosing loops are re-executed per worker, every output point is
still written exactly once — and strict-bounds errors carry a
band-entry ordinal so the entry point can report the serially-first
one.  An uncertified non-root band keeps the serial emission below
(still bit-identical, just not threaded).

Bit-identity with the Python backends is by construction, not by luck:

* the loop structure is the lowered nest itself — tiles, reordering,
  unrolling and strips become the same traversal order the interpreter
  walks (parallel chunking is order-preserving by design, so chunked
  loops are emitted as their equivalent serial loops);
* every per-cell operation is a single IEEE-754 double operation in
  both backends (the expression *tree* is identical, and ``+ - * /``
  are correctly rounded everywhere), with contraction and
  reassociation disabled at compile time;
* integer index arithmetic uses C's truncating ``/`` and ``%``, which
  match the Fortran truncation semantics of
  :func:`repro.semantics.numeric.trunc_div`/``trunc_mod`` exactly;
* clamped (non-strict) loads clamp per coordinate exactly like
  ``np.clip``.

Only operations with a correctly-rounded (or exact) C twin are
translated: ``+ - * /``, ``sqrt``, ``abs``, ``min``/``max``.
Transcendentals (``exp``/``log``/``sin``/...) are *not* — libm and
numpy may legally differ in the last ulp, which would break the bitwise
differential contract — so such nests raise
:class:`NativeUnsupportedError` and callers fall back to the
generated-Python backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.halide.cppgen import cpp_double_literal
from repro.halide.lang import (
    BinOp,
    Call,
    Const,
    Expr,
    Func,
    FuncRef,
    HalideError,
    ImageRef,
    Param,
    Var,
)
from repro.halide.loopir import (
    BoundExpr,
    Clamped,
    ComputeSpan,
    DomainHi,
    DomainLo,
    Loop,
    LoopNest,
    LoopVar,
    Shifted,
)
from repro.halide.lower import _collect_images, _collect_params


class NativeUnsupportedError(HalideError):
    """The definition falls outside the bit-identical native fragment."""


# Value-level calls with a correctly-rounded / exact C translation.
# np.minimum/np.maximum propagate the *first* NaN operand; the helpers
# in the preamble reproduce that (fmin/fmax would drop NaNs instead).
_NATIVE_CALLS = {
    "sqrt": "sqrt({0})",
    "abs": "fabs({0})",
    "min": "rk_min({0}, {1})",
    "max": "rk_max({0}, {1})",
}

_PREAMBLE = """\
#include <stdint.h>
#include <math.h>

static inline int64_t rk_imin(int64_t a, int64_t b) { return a < b ? a : b; }
static inline int64_t rk_imax(int64_t a, int64_t b) { return a > b ? a : b; }
/* np.minimum/np.maximum semantics: the first NaN operand propagates. */
static inline double rk_min(double a, double b) {
    if (a != a) return a;
    if (b != b) return b;
    return a < b ? a : b;
}
static inline double rk_max(double a, double b) {
    if (a != a) return a;
    if (b != b) return b;
    return a > b ? a : b;
}
"""

ENTRY_SYMBOL = "repro_kernel_run"


def native_supported(func: Func) -> bool:
    """Can this Func's definition be translated bit-identically to C?"""
    if func.definition is None:
        return False
    for node in func.definition.walk():
        if isinstance(node, FuncRef):
            return False
        if isinstance(node, Call):
            if node.func in {"min", "max", "mod"}:
                continue  # min/max always; mod only valid in index position
            if node.func not in _NATIVE_CALLS:
                return False
        if isinstance(node, BinOp) and node.op not in {"+", "-", "*", "/"}:
            return False
    return True


@dataclass(frozen=True)
class CSource:
    """One emitted C translation unit plus its calling convention."""

    text: str
    entry: str
    dimensions: int
    image_names: Tuple[str, ...]
    image_ranks: Tuple[int, ...]
    param_names: Tuple[str, ...]
    strict_bounds: bool
    kernel_name: str
    schedule: str
    threaded: bool = False


class _CEmitter:
    def __init__(self, nest: LoopNest, strict_bounds: bool, threaded: bool = False):
        self.nest = nest
        self.func = nest.func
        self.strict = strict_bounds
        self.threaded = threaded
        self.uses_pthreads = False
        # When set, ``_parallel_loop`` iterates this (lower, upper) pair
        # instead of its own bounds — used by the per-slab worker.
        self._parallel_loop: "Loop | None" = None
        self._parallel_override: "Tuple[str, str] | None" = None
        # Non-root threaded workers track a serial-order ordinal so the
        # entry point can pick the serially-first strict-bounds error.
        self._ordinal = False
        self.lines: List[str] = []
        self.temp_count = 0
        self.images = _collect_images(self.func.definition)
        self.params = _collect_params(self.func.definition)
        self.image_index = {name: position for position, name in enumerate(self.images)}
        # Sanitize loop-variable names: nest vars come from the DSL
        # ("x", "y_t", ...) and are mapped to fresh C identifiers so no
        # DSL name can collide with a C keyword or an emitter local.
        self.var_names: Dict[str, str] = {}
        leaf: Union[Loop, ComputeSpan] = nest.root
        while isinstance(leaf, Loop):
            self.var_names.setdefault(leaf.var, f"v{len(self.var_names)}")
            leaf = leaf.body
        self.span_axis = leaf.axis

    def temp(self) -> str:
        self.temp_count += 1
        return f"t{self.temp_count}"

    def emit(self, line: str, depth: int) -> None:
        self.lines.append("    " * depth + line)

    # -- symbolic bounds ----------------------------------------------------
    def bound(self, bound: BoundExpr) -> str:
        if isinstance(bound, DomainLo):
            return f"lo[{bound.axis}]"
        if isinstance(bound, DomainHi):
            return f"hi[{bound.axis}]"
        if isinstance(bound, LoopVar):
            return self.var_names[bound.name]
        if isinstance(bound, Shifted):
            if bound.offset == 0:
                return self.bound(bound.base)
            sign = "+" if bound.offset >= 0 else "-"
            return f"({self.bound(bound.base)} {sign} {abs(bound.offset)})"
        if isinstance(bound, Clamped):
            return f"rk_imin({self.bound(bound.left)}, {self.bound(bound.right)})"
        raise HalideError(f"unknown bound expression {bound!r}")

    # -- expressions --------------------------------------------------------
    def emit_index(self, expr: Expr, ctx: Dict[str, Tuple[str, str]]) -> str:
        """C source of an integer (int64) index expression."""
        if isinstance(expr, Const):
            return f"INT64_C({int(expr.value)})"
        if isinstance(expr, Var):
            if expr.name not in ctx:
                raise HalideError(f"free variable {expr.name!r} in definition")
            return ctx[expr.name][0]
        if isinstance(expr, Param):
            return f"pi{self.params.index(expr.name)}"
        if isinstance(expr, BinOp):
            left = self.emit_index(expr.left, ctx)
            right = self.emit_index(expr.right, ctx)
            if expr.op in {"+", "-", "*"}:
                return f"({left} {expr.op} {right})"
            if expr.op == "/":
                # C int64 division truncates toward zero = Fortran semantics.
                return f"({left} / {right})"
            raise HalideError(f"unknown operator {expr.op!r} in index")
        if isinstance(expr, Call) and expr.func in {"min", "max"} and len(expr.args) == 2:
            left = self.emit_index(expr.args[0], ctx)
            right = self.emit_index(expr.args[1], ctx)
            fn = "rk_imin" if expr.func == "min" else "rk_imax"
            return f"{fn}({left}, {right})"
        if isinstance(expr, Call) and expr.func == "mod" and len(expr.args) == 2:
            left = self.emit_index(expr.args[0], ctx)
            right = self.emit_index(expr.args[1], ctx)
            # C % has the sign of the dividend = Fortran mod semantics.
            return f"({left} % {right})"
        raise NativeUnsupportedError(f"unsupported index expression {expr!r}")

    def emit_value(self, expr: Expr, depth: int, ctx: Dict[str, Tuple[str, str]]) -> str:
        """Emit statements computing a double value; returns its source/temp."""
        if isinstance(expr, Const):
            return cpp_double_literal(float(expr.value))
        if isinstance(expr, Var):
            if expr.name not in ctx:
                raise HalideError(f"free variable {expr.name!r} in definition")
            return ctx[expr.name][1]
        if isinstance(expr, Param):
            return f"pv{self.params.index(expr.name)}"
        if isinstance(expr, BinOp):
            if expr.op not in {"+", "-", "*", "/"}:
                raise NativeUnsupportedError(f"unknown operator {expr.op!r}")
            left = self.emit_value(expr.left, depth, ctx)
            right = self.emit_value(expr.right, depth, ctx)
            out = self.temp()
            self.emit(f"const double {out} = {left} {expr.op} {right};", depth)
            return out
        if isinstance(expr, Call):
            template = _NATIVE_CALLS.get(expr.func)
            if template is None:
                raise NativeUnsupportedError(
                    f"no bit-identical C translation for function {expr.func!r} "
                    "(libm transcendentals may differ from numpy in the last ulp)"
                )
            args = [self.emit_value(a, depth, ctx) for a in expr.args]
            out = self.temp()
            self.emit(f"const double {out} = {template.format(*args)};", depth)
            return out
        if isinstance(expr, ImageRef):
            return self._emit_load(expr, depth, ctx)
        raise NativeUnsupportedError(f"cannot translate expression {expr!r}")

    def _emit_load(self, ref: ImageRef, depth: int, ctx: Dict[str, Tuple[str, str]]) -> str:
        position = self.image_index[ref.image.name]
        rank = self.images[ref.image.name]
        coords: List[str] = []
        for dim, index in enumerate(ref.indices):
            raw = self.emit_index(index, ctx)
            coord = self.temp()
            self.emit(f"int64_t {coord} = {raw} - o{position}_{dim};", depth)
            extent = f"n{position}_{dim}"
            if self.strict:
                self.emit(f"if ({coord} < 0 || {coord} >= {extent}) {{", depth)
                self.emit(f"err[0] = {position}; err[1] = {dim}; err[2] = {coord};", depth + 1)
                self.emit("return 1;", depth + 1)
                self.emit("}", depth)
            else:
                self.emit(f"if ({coord} < 0) {coord} = 0;", depth)
                self.emit(f"else if ({coord} > {extent} - 1) {coord} = {extent} - 1;", depth)
            coords.append(coord)
        flat = coords[0]
        for dim in range(1, rank):
            flat = f"({flat} * n{position}_{dim} + {coords[dim]})"
        out = self.temp()
        self.emit(f"const double {out} = b{position}[{flat}];", depth)
        return out

    # -- loop structure -----------------------------------------------------
    def _emit_prologue(self, depth: int) -> None:
        """Unpack buffers, origins, extents and scalar params into locals."""
        dims = self.func.dimensions
        self.emit("(void)bufs; (void)borig; (void)bext; (void)params; (void)err;", depth)
        for axis in range(dims):
            self.emit(f"const int64_t e{axis} = hi[{axis}] - lo[{axis}] + 1;", depth)
            self.emit(f"(void)e{axis};", depth)
        flat_pos = 0
        for position, (name, rank) in enumerate(self.images.items()):
            self.emit(f"double* const b{position} = bufs[{position}];  /* {name} */", depth)
            for dim in range(rank):
                self.emit(f"const int64_t o{position}_{dim} = borig[{flat_pos}];", depth)
                self.emit(f"const int64_t n{position}_{dim} = bext[{flat_pos}];", depth)
                self.emit(f"(void)n{position}_{dim};", depth)
                flat_pos += 1
        for position, name in enumerate(self.params):
            self.emit(f"const double pv{position} = params[{position}];  /* {name} */", depth)
            self.emit(f"const int64_t pi{position} = (int64_t)params[{position}];", depth)
            self.emit(f"(void)pv{position}; (void)pi{position};", depth)

    def _find_parallel_loop(self) -> "Loop | None":
        node: Union[Loop, ComputeSpan] = self.nest.root
        while isinstance(node, Loop):
            if node.kind == "parallel":
                return node
            node = node.body
        return None

    def emit_kernel(self) -> None:
        root = self.nest.root
        self.emit(f"/* kernel {self.func.name}: [{self.nest.schedule.describe()}] */", 0)
        parallel = self._find_parallel_loop()
        if self.threaded and parallel is not None and parallel.chunks > 1:
            if parallel is root:
                self.uses_pthreads = True
                self._emit_threaded_kernel(root)
                return
            # A parallel band below the root (dim_order put other axes
            # outside it) may still be threaded, but only when the
            # static race check certifies the schedule and the band's
            # bounds are entry-scope pure; otherwise fall back to the
            # (still bit-identical) serial emission.
            from repro.analysis.legality import parallel_band_race_free

            if parallel_band_race_free(self.nest):
                self.uses_pthreads = True
                self._emit_threaded_nonroot_kernel(parallel)
                return
        self._emit_serial_kernel()

    def _emit_serial_kernel(self) -> None:
        self.emit(
            f"int64_t {ENTRY_SYMBOL}(const int64_t* lo, const int64_t* hi,", 0
        )
        self.emit("double* const* bufs, const int64_t* borig, const int64_t* bext,", 5)
        self.emit("const double* params, double* out, int64_t* err, int64_t threads)", 5)
        self.emit("{", 0)
        self.emit("(void)threads;", 1)
        self._emit_prologue(1)
        self._emit_node(self.nest.root, 1, {})
        self.emit("return 0;", 1)
        self.emit("}", 0)

    def _emit_threaded_kernel(self, root: Loop) -> None:
        """The outermost parallel band as a pthread-dispatched slab worker.

        ``rk_chunk`` is the serial nest with the outer loop clamped to
        one step-aligned slab; the entry point replicates
        ``chunk_ranges`` (C truncating ``/`` equals Python floor ``//``
        here because the range is non-empty and the step positive),
        round-robins the slabs over ``threads`` workers, joins, and
        scans the slabs in serial order for the first error.
        """
        chunks = root.chunks
        step = root.step
        self.emit("static int64_t rk_chunk(const int64_t* lo, const int64_t* hi,", 0)
        self.emit("double* const* bufs, const int64_t* borig, const int64_t* bext,", 5)
        self.emit("const double* params, double* out, int64_t* err,", 5)
        self.emit("int64_t ck_lo, int64_t ck_hi)", 5)
        self.emit("{", 0)
        self._emit_prologue(1)
        self._parallel_loop = root
        self._parallel_override = ("ck_lo", "ck_hi")
        self._emit_node(root, 1, {})
        self._parallel_override = None
        self._parallel_loop = None
        self.emit("return 0;", 1)
        self.emit("}", 0)
        self.emit("", 0)
        self.emit("typedef struct {", 0)
        self.emit("const int64_t* lo; const int64_t* hi;", 1)
        self.emit("double* const* bufs; const int64_t* borig; const int64_t* bext;", 1)
        self.emit("const double* params; double* out;", 1)
        self.emit("int64_t ck_lo; int64_t ck_hi;", 1)
        self.emit("int64_t rc; int64_t err[3];", 1)
        self.emit("} rk_task_t;", 0)
        self.emit("", 0)
        self.emit("typedef struct {", 0)
        self.emit("rk_task_t* tasks; int64_t ntasks; int64_t tid; int64_t stride;", 1)
        self.emit("} rk_worker_arg_t;", 0)
        self.emit("", 0)
        self.emit("static void* rk_worker(void* argp) {", 0)
        self.emit("rk_worker_arg_t* arg = (rk_worker_arg_t*)argp;", 1)
        self.emit("for (int64_t i = arg->tid; i < arg->ntasks; i += arg->stride) {", 1)
        self.emit("rk_task_t* t = &arg->tasks[i];", 2)
        self.emit("t->rc = rk_chunk(t->lo, t->hi, t->bufs, t->borig, t->bext,", 2)
        self.emit("t->params, t->out, t->err, t->ck_lo, t->ck_hi);", 6)
        self.emit("}", 1)
        self.emit("return 0;", 1)
        self.emit("}", 0)
        self.emit("", 0)
        self.emit(
            f"int64_t {ENTRY_SYMBOL}(const int64_t* lo, const int64_t* hi,", 0
        )
        self.emit("double* const* bufs, const int64_t* borig, const int64_t* bext,", 5)
        self.emit("const double* params, double* out, int64_t* err, int64_t threads)", 5)
        self.emit("{", 0)
        self.emit(f"const int64_t p_lo = {self.bound(root.lower)};", 1)
        self.emit(f"const int64_t p_hi = {self.bound(root.upper)};", 1)
        self.emit(f"rk_task_t tasks[{chunks}];", 1)
        self.emit("int64_t ntasks = 0;", 1)
        self.emit("if (p_lo <= p_hi) {", 1)
        self.emit(f"const int64_t iters = (p_hi - p_lo) / {step} + 1;", 2)
        self.emit(f"const int64_t per_chunk = ((iters + {chunks - 1}) / {chunks}) * {step};", 2)
        self.emit("for (int64_t start = p_lo; start <= p_hi; start += per_chunk) {", 2)
        self.emit("rk_task_t* t = &tasks[ntasks];", 3)
        self.emit("t->lo = lo; t->hi = hi; t->bufs = bufs; t->borig = borig; t->bext = bext;", 3)
        self.emit("t->params = params; t->out = out;", 3)
        self.emit("t->ck_lo = start;", 3)
        self.emit(f"t->ck_hi = rk_imin(start + per_chunk - {step}, p_hi);", 3)
        self.emit("t->rc = 0; t->err[0] = 0; t->err[1] = 0; t->err[2] = 0;", 3)
        self.emit("ntasks++;", 3)
        self.emit("}", 2)
        self.emit("}", 1)
        self.emit("int64_t nthreads = threads < 1 ? 1 : threads;", 1)
        self.emit("if (nthreads > ntasks) nthreads = ntasks;", 1)
        self.emit("if (nthreads <= 1) {", 1)
        self.emit("for (int64_t i = 0; i < ntasks; i++) {", 2)
        self.emit("rk_task_t* t = &tasks[i];", 3)
        self.emit("t->rc = rk_chunk(t->lo, t->hi, t->bufs, t->borig, t->bext,", 3)
        self.emit("t->params, t->out, t->err, t->ck_lo, t->ck_hi);", 7)
        self.emit("if (t->rc != 0) {", 3)
        self.emit("err[0] = t->err[0]; err[1] = t->err[1]; err[2] = t->err[2];", 4)
        self.emit("return 1;", 4)
        self.emit("}", 3)
        self.emit("}", 2)
        self.emit("return 0;", 2)
        self.emit("}", 1)
        self.emit(f"pthread_t tids[{chunks}];", 1)
        self.emit(f"rk_worker_arg_t wargs[{chunks}];", 1)
        self.emit(f"int created[{chunks}];", 1)
        self.emit("for (int64_t w = 0; w < nthreads; w++) {", 1)
        self.emit("wargs[w].tasks = tasks; wargs[w].ntasks = ntasks;", 2)
        self.emit("wargs[w].tid = w; wargs[w].stride = nthreads;", 2)
        self.emit("created[w] = pthread_create(&tids[w], 0, rk_worker, &wargs[w]) == 0;", 2)
        self.emit("if (!created[w]) rk_worker(&wargs[w]);", 2)
        self.emit("}", 1)
        self.emit("for (int64_t w = 0; w < nthreads; w++) {", 1)
        self.emit("if (created[w]) pthread_join(tids[w], 0);", 2)
        self.emit("}", 1)
        self.emit("for (int64_t i = 0; i < ntasks; i++) {", 1)
        self.emit("if (tasks[i].rc != 0) {", 2)
        self.emit("err[0] = tasks[i].err[0]; err[1] = tasks[i].err[1]; err[2] = tasks[i].err[2];", 3)
        self.emit("return 1;", 3)
        self.emit("}", 2)
        self.emit("}", 1)
        self.emit("return 0;", 1)
        self.emit("}", 0)

    def _emit_threaded_nonroot_kernel(self, parallel: Loop) -> None:
        """Thread a parallel band that sits *below* the nest's root.

        Each worker runs the *entire* nest with the parallel band
        clamped to one step-aligned slab, so the enclosing loops are
        re-executed per slab while every output point is still computed
        exactly once (the slabs partition the band's range, the band's
        axis selects distinct output coordinates, and the legality
        certificate — checked by the caller via
        :func:`repro.analysis.legality.parallel_band_race_free` —
        guarantees no cross-slab value dependence).  The band's bounds
        are entry-scope pure (also certified), so the slab partition can
        be computed once, before dispatch.

        Strict-bounds errors keep serial semantics: a worker records the
        band-entry ordinal alongside its first error (``err[3]``,
        task-local only — the entry ABI stays three-wide), and the entry
        point picks the failing task with the smallest
        ``(ordinal, slab)`` pair, which is the error serial execution
        would have hit first.
        """
        chunks = parallel.chunks
        step = parallel.step
        self.emit("static int64_t rk_chunk(const int64_t* lo, const int64_t* hi,", 0)
        self.emit("double* const* bufs, const int64_t* borig, const int64_t* bext,", 5)
        self.emit("const double* params, double* out, int64_t* err,", 5)
        self.emit("int64_t ck_lo, int64_t ck_hi)", 5)
        self.emit("{", 0)
        self._emit_prologue(1)
        if self.strict:
            self.emit("int64_t rk_pos = 0;", 1)
        self._parallel_loop = parallel
        self._parallel_override = ("ck_lo", "ck_hi")
        self._ordinal = self.strict
        self._emit_node(self.nest.root, 1, {})
        self._ordinal = False
        self._parallel_override = None
        self._parallel_loop = None
        self.emit("return 0;", 1)
        self.emit("}", 0)
        self.emit("", 0)
        self.emit("typedef struct {", 0)
        self.emit("const int64_t* lo; const int64_t* hi;", 1)
        self.emit("double* const* bufs; const int64_t* borig; const int64_t* bext;", 1)
        self.emit("const double* params; double* out;", 1)
        self.emit("int64_t ck_lo; int64_t ck_hi;", 1)
        self.emit("int64_t rc; int64_t err[4];", 1)
        self.emit("} rk_task_t;", 0)
        self.emit("", 0)
        self.emit("typedef struct {", 0)
        self.emit("rk_task_t* tasks; int64_t ntasks; int64_t tid; int64_t stride;", 1)
        self.emit("} rk_worker_arg_t;", 0)
        self.emit("", 0)
        self.emit("static void* rk_worker(void* argp) {", 0)
        self.emit("rk_worker_arg_t* arg = (rk_worker_arg_t*)argp;", 1)
        self.emit("for (int64_t i = arg->tid; i < arg->ntasks; i += arg->stride) {", 1)
        self.emit("rk_task_t* t = &arg->tasks[i];", 2)
        self.emit("t->rc = rk_chunk(t->lo, t->hi, t->bufs, t->borig, t->bext,", 2)
        self.emit("t->params, t->out, t->err, t->ck_lo, t->ck_hi);", 6)
        self.emit("}", 1)
        self.emit("return 0;", 1)
        self.emit("}", 0)
        self.emit("", 0)
        self.emit(
            f"int64_t {ENTRY_SYMBOL}(const int64_t* lo, const int64_t* hi,", 0
        )
        self.emit("double* const* bufs, const int64_t* borig, const int64_t* bext,", 5)
        self.emit("const double* params, double* out, int64_t* err, int64_t threads)", 5)
        self.emit("{", 0)
        self.emit(f"const int64_t p_lo = {self.bound(parallel.lower)};", 1)
        self.emit(f"const int64_t p_hi = {self.bound(parallel.upper)};", 1)
        self.emit(f"rk_task_t tasks[{chunks}];", 1)
        self.emit("int64_t ntasks = 0;", 1)
        self.emit("if (p_lo <= p_hi) {", 1)
        self.emit(f"const int64_t iters = (p_hi - p_lo) / {step} + 1;", 2)
        self.emit(f"const int64_t per_chunk = ((iters + {chunks - 1}) / {chunks}) * {step};", 2)
        self.emit("for (int64_t start = p_lo; start <= p_hi; start += per_chunk) {", 2)
        self.emit("rk_task_t* t = &tasks[ntasks];", 3)
        self.emit("t->lo = lo; t->hi = hi; t->bufs = bufs; t->borig = borig; t->bext = bext;", 3)
        self.emit("t->params = params; t->out = out;", 3)
        self.emit("t->ck_lo = start;", 3)
        self.emit(f"t->ck_hi = rk_imin(start + per_chunk - {step}, p_hi);", 3)
        self.emit("t->rc = 0; t->err[0] = 0; t->err[1] = 0; t->err[2] = 0; t->err[3] = 0;", 3)
        self.emit("ntasks++;", 3)
        self.emit("}", 2)
        self.emit("}", 1)
        self.emit("int64_t nthreads = threads < 1 ? 1 : threads;", 1)
        self.emit("if (nthreads > ntasks) nthreads = ntasks;", 1)
        self.emit("if (nthreads <= 1) {", 1)
        # One full-range worker call *is* serial execution, enclosing
        # loops included — the first error it reports is serial-first.
        self.emit("int64_t werr[4] = {0, 0, 0, 0};", 2)
        self.emit("if (rk_chunk(lo, hi, bufs, borig, bext, params, out, werr, p_lo, p_hi) != 0) {", 2)
        self.emit("err[0] = werr[0]; err[1] = werr[1]; err[2] = werr[2];", 3)
        self.emit("return 1;", 3)
        self.emit("}", 2)
        self.emit("return 0;", 2)
        self.emit("}", 1)
        self.emit(f"pthread_t tids[{chunks}];", 1)
        self.emit(f"rk_worker_arg_t wargs[{chunks}];", 1)
        self.emit(f"int created[{chunks}];", 1)
        self.emit("for (int64_t w = 0; w < nthreads; w++) {", 1)
        self.emit("wargs[w].tasks = tasks; wargs[w].ntasks = ntasks;", 2)
        self.emit("wargs[w].tid = w; wargs[w].stride = nthreads;", 2)
        self.emit("created[w] = pthread_create(&tids[w], 0, rk_worker, &wargs[w]) == 0;", 2)
        self.emit("if (!created[w]) rk_worker(&wargs[w]);", 2)
        self.emit("}", 1)
        self.emit("for (int64_t w = 0; w < nthreads; w++) {", 1)
        self.emit("if (created[w]) pthread_join(tids[w], 0);", 2)
        self.emit("}", 1)
        self.emit("int64_t first = -1;", 1)
        self.emit("for (int64_t i = 0; i < ntasks; i++) {", 1)
        self.emit("if (tasks[i].rc != 0 && (first < 0 || tasks[i].err[3] < tasks[first].err[3])) {", 2)
        self.emit("first = i;", 3)
        self.emit("}", 2)
        self.emit("}", 1)
        self.emit("if (first >= 0) {", 1)
        self.emit("err[0] = tasks[first].err[0]; err[1] = tasks[first].err[1]; err[2] = tasks[first].err[2];", 2)
        self.emit("return 1;", 2)
        self.emit("}", 1)
        self.emit("return 0;", 1)
        self.emit("}", 0)

    def _emit_node(self, node: Union[Loop, ComputeSpan], depth: int, coords: Dict[int, str]) -> None:
        if isinstance(node, ComputeSpan):
            raise HalideError("loop nest has no loops")
        if node is self._parallel_loop and self._parallel_override is not None:
            lower, upper = self._parallel_override
            if self._ordinal:
                # One ordinal per entry of the band (= per enclosing
                # iteration): the serially-first strict-bounds error is
                # the one with the smallest (ordinal, slab) pair.
                self.emit("err[3] = rk_pos++;", depth)
        else:
            lower = self.bound(node.lower)
            upper = self.bound(node.upper)
        var = self.var_names[node.var]
        # Parallel chunking is step-aligned and order-preserving
        # (chunk_ranges covers the exact serial sequence), so the chunked
        # loop and its serial equivalent compute identical results; a
        # parallel loop that cannot be threaded is emitted in its serial
        # form.
        self.emit(
            f"for (int64_t {var} = {lower}; {var} <= {upper}; {var} += {node.step}) {{",
            depth,
        )
        if isinstance(node.body, ComputeSpan):
            self._emit_band(node, node.body, depth + 1, coords)
        else:
            new_coords = dict(coords)
            new_coords[node.axis] = var
            self._emit_node(node.body, depth + 1, new_coords)
        self.emit("}", depth)

    def _emit_band(self, strip: Loop, span: ComputeSpan, depth: int, coords: Dict[int, str]) -> None:
        """The innermost band: ``unroll`` consecutive spans of ``width``."""
        strip_var = self.var_names[strip.var]
        if span.width == 1 and span.unroll == 1:
            self._emit_point(span, strip_var, depth, coords)
            return
        band_hi = self.temp()
        self.emit(f"const int64_t {band_hi} = {self.bound(span.upper)};", depth)
        self.emit(f"for (int64_t k = 0; k < {span.unroll}; k++) {{", depth)
        self.emit(f"const int64_t s = {strip_var} + k * {span.width};", depth + 1)
        self.emit(f"if (s > {band_hi}) break;", depth + 1)
        self.emit(f"const int64_t e = rk_imin(s + {span.width} - 1, {band_hi});", depth + 1)
        self.emit("for (int64_t p = s; p <= e; p++) {", depth + 1)
        self._emit_point(span, "p", depth + 2, coords)
        self.emit("}", depth + 1)
        self.emit("}", depth)

    def _emit_point(self, span: ComputeSpan, point_src: str, depth: int, coords: Dict[int, str]) -> None:
        ctx: Dict[str, Tuple[str, str]] = {}
        for axis, var in enumerate(self.func.vars):
            if axis == span.axis:
                ctx[var.name] = (point_src, f"(double){point_src}")
            else:
                src = coords[axis]
                ctx[var.name] = (src, f"(double){src}")
        value = self.emit_value(self.func.definition, depth, ctx)
        parts: List[str] = []
        for axis in range(self.func.dimensions):
            src = point_src if axis == span.axis else coords[axis]
            parts.append(f"({src} - lo[{axis}])")
        flat = parts[0]
        for axis in range(1, self.func.dimensions):
            flat = f"({flat} * e{axis} + {parts[axis]})"
        self.emit(f"out[{flat}] = {value};", depth)


def emit_c_source(
    nest: LoopNest, strict_bounds: bool = False, threaded: bool = False
) -> CSource:
    """Emit the C translation unit for one lowered loop nest.

    ``threaded`` requests pthread dispatch of the ``parallel`` chunk
    band (see the module docstring for why the result stays
    bit-identical to serial); it requires a toolchain compiled with
    ``-pthread`` and is a no-op for nests with no parallel band — or
    with a non-root band the static race analysis cannot certify.
    Raises :class:`NativeUnsupportedError` when the
    definition uses an operation without a bit-identical C twin (callers
    fall back to the generated-Python backend).
    """
    if not native_supported(nest.func):
        raise NativeUnsupportedError(
            f"Func {nest.func.name!r} uses operations outside the "
            "bit-identical native fragment"
        )
    emitter = _CEmitter(nest, strict_bounds, threaded=threaded)
    emitter.emit_kernel()
    preamble = _PREAMBLE
    if emitter.uses_pthreads:
        preamble += "#include <pthread.h>\n"
    text = preamble + "\n" + "\n".join(emitter.lines) + "\n"
    return CSource(
        text=text,
        entry=ENTRY_SYMBOL,
        dimensions=nest.func.dimensions,
        image_names=tuple(emitter.images),
        image_ranks=tuple(emitter.images[name] for name in emitter.images),
        param_names=tuple(emitter.params),
        strict_bounds=strict_bounds,
        kernel_name=nest.func.name,
        schedule=nest.schedule.describe(),
        threaded=emitter.uses_pthreads,
    )
