"""Content-addressed store of compiled native kernel artifacts.

The native execution backend (:mod:`repro.native`) compiles emitted C
kernels into shared objects with the system toolchain.  Compilation is
by far the most expensive part of native dispatch, and it is a pure
function of (generated source, compiler, flags) — exactly the shape of
an output cache: this store keys every ``.so`` by the SHA-256 of that
triple, so a warm run ``dlopen``\\ s the cached artifact instead of
re-lowering and re-compiling anything.

Layout: artifacts are bucketed into ``<root>/<prefix>/`` shard
subdirectories by the first two characters of their key (the shared
:func:`~repro.cache.shards.shard_path` helper), each holding
``<key>.so`` plus a ``<key>.json`` metadata sidecar (kernel name,
schedule, source digest, compiler fingerprint, creation time, and the
SHA-256 of the published ``.so`` bytes).  Writers publish atomically
(temp file + ``os.replace``) under a *per-shard* crash-reclaimable
:class:`~repro.cache.locks.FileLock`, so concurrent processes sharing a
store directory only contend when publishing into the same bucket, never
observe half-written artifacts, and a killed writer never wedges the
store.

Integrity: loads verify the ``.so`` bytes against the digest recorded
at publication.  A mismatch (truncation, bit rot, an injected fault)
quarantines both files aside as ``*.corrupt-<n>`` with a
:class:`~repro.cache.integrity.CacheIntegrityWarning` and reports a
miss, so the caller recompiles instead of ``dlopen``\\ ing garbage.

The store keeps per-instance counters (artifact hits/misses, compiles
performed, compile seconds) which the benchmarks publish next to the
speedup JSON — a warm run is *verified* warm by ``compiles == 0``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.cache.integrity import quarantine_file, sha256_bytes
from repro.cache.locks import FileLock, LockTimeout
from repro.cache.shards import shard_path
from repro.testing import faultinject

# Bump when the artifact layout or the generated-code ABI changes: old
# artifacts become unreachable (new keys) rather than wrongly loaded.
# "2" added the mandatory sha256 integrity digest to the sidecar.
# "3" added the trailing ``int64_t threads`` entry-point argument (the
# threaded parallel-band dispatch) — pre-thread .so files must never be
# called through the new signature.
ARTIFACT_FORMAT = "native-artifact-3"


def artifact_key(source: str, toolchain_fingerprint: str) -> str:
    """Content address of one compiled kernel.

    The key covers everything the bits of the ``.so`` depend on: the
    generated C source (which itself encodes the lowered loop nest,
    i.e. kernel *and* schedule *and* strict-bounds mode), the compiler
    identity/version and the flag set, and the artifact format version.
    """
    digest = hashlib.sha256()
    digest.update(ARTIFACT_FORMAT.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(toolchain_fingerprint.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


class ArtifactStore:
    """A directory of content-addressed compiled kernels.

    Parameters
    ----------
    directory:
        Where artifacts live; created on first write.
    lock_timeout:
        Passed to the publish-time :class:`FileLock`; on timeout the
        artifact is still produced for this process (from its temp
        build), it just is not published to the shared directory.
    """

    def __init__(self, directory: "os.PathLike[str] | str", lock_timeout: float = 10.0):
        self.directory = Path(directory)
        self.lock_timeout = lock_timeout
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.compile_seconds = 0.0

    # ------------------------------------------------------------------
    # Lookup / publish
    # ------------------------------------------------------------------
    def shard_dir(self, key: str) -> Path:
        """The ``<root>/<prefix>/`` bucket holding ``key``'s files."""
        return shard_path(self.directory, key)

    def publish_lock_path(self, key: str) -> Path:
        """The per-shard lock publications into ``key``'s bucket take."""
        return Path(str(self.shard_dir(key)) + ".lock")

    def so_path(self, key: str) -> Path:
        return self.shard_dir(key) / f"{key}.so"

    def meta_path(self, key: str) -> Path:
        return self.shard_dir(key) / f"{key}.json"

    def _verify(self, key: str) -> bool:
        """Do the ``.so`` bytes still match the digest published with them?

        ``False`` quarantines the artifact and its sidecar: a sidecar
        that is missing, unparseable or digest-less is treated exactly
        like a byte mismatch, because an artifact whose integrity cannot
        be checked cannot be trusted either.
        """
        path = self.so_path(key)
        meta = self.meta_path(key)
        expected: Optional[str] = None
        try:
            with open(meta, "r", encoding="utf-8") as handle:
                sidecar = json.load(handle)
            if isinstance(sidecar, dict):
                expected = sidecar.get("sha256")
        except (OSError, ValueError):
            expected = None
        actual: Optional[str] = None
        if expected is not None:
            try:
                actual = sha256_bytes(path.read_bytes())
            except OSError:
                actual = None
        if expected is not None and actual == expected:
            return True
        reason = (
            f"artifact {key[:16]} digest mismatch"
            if expected is not None
            else f"artifact {key[:16]} has no integrity digest"
        )
        quarantine_file(path, reason)
        if meta.is_file():
            quarantine_file(meta, reason)
        return False

    def get(self, key: str) -> Optional[Path]:
        """Path of the cached, integrity-verified shared object, or ``None``.

        A truncated or bit-flipped artifact (or one missing its digest)
        is quarantined and counted as a miss — the caller recompiles and
        republishes, overwriting nothing.
        """
        path = self.so_path(key)
        if path.is_file() and self._verify(key):
            self.hits += 1
            return path
        self.misses += 1
        return None

    def put(self, key: str, built_so: "os.PathLike[str] | str", metadata: Optional[Dict[str, Any]] = None) -> Path:
        """Publish a freshly compiled ``.so`` under ``key``; returns its path.

        The build itself happens outside the store (and outside the
        lock); publishing copies the file next to a metadata sidecar
        carrying the SHA-256 of the published bytes, with atomic
        replaces.  If another process published the same key first, its
        artifact wins (the contents are identical by construction) —
        but only after re-verifying it: a corrupt pre-existing artifact
        is quarantined and replaced by this build.
        """
        faultinject.fire("artifact-publish", key)
        target = self.so_path(key)
        bucket = self.shard_dir(key)
        bucket.mkdir(parents=True, exist_ok=True)
        built_bytes = Path(built_so).read_bytes()
        digest = sha256_bytes(built_bytes)
        lock = FileLock(self.publish_lock_path(key), timeout=self.lock_timeout)
        try:
            lock.acquire()
        except LockTimeout:
            return Path(built_so)  # keep the private build; skip publishing
        try:
            if target.is_file() and self._verify(key):
                return target
            fd, tmp_name = tempfile.mkstemp(prefix=key[:16] + ".", suffix=".so.tmp", dir=str(bucket))
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(built_bytes)
                os.replace(tmp_name, target)
                faultinject.corrupt_file("artifact-so", key, target)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            sidecar = {
                "format": ARTIFACT_FORMAT,
                "created": time.time(),
                "size": len(built_bytes),
                "sha256": digest,
            }
            sidecar.update(metadata or {})
            meta_path = self.meta_path(key)
            fd, tmp_name = tempfile.mkstemp(prefix=key[:16] + ".", suffix=".json.tmp", dir=str(bucket))
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(sidecar, handle, indent=2, sort_keys=True)
            os.replace(tmp_name, meta_path)
            return target
        finally:
            lock.release()

    def note_compile(self, seconds: float) -> None:
        """Record one toolchain invocation (for the cold-vs-warm stats)."""
        self.compiles += 1
        self.compile_seconds += seconds

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for path in self.directory.rglob("*.so"))

    def total_bytes(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(path.stat().st_size for path in self.directory.rglob("*.so"))

    def stats(self) -> Dict[str, Any]:
        """JSON-able counters for benchmark/CI publication."""
        return {
            "directory": str(self.directory),
            "entries": self.entry_count(),
            "bytes": self.total_bytes(),
            "artifact_hits": self.hits,
            "artifact_misses": self.misses,
            "compiles": self.compiles,
            "compile_seconds": self.compile_seconds,
        }
