"""Content-addressed cache of verified synthesis results.

The paper ran every per-kernel synthesis strategy from scratch on a
cluster; a production lifting service cannot afford to re-prove the
same kernel on every request.  This package memoizes the expensive
middle of the pipeline — template generation, CEGIS and bounded
verification — keyed by a *content address*:

* a structural hash of the kernel IR (:mod:`repro.cache.fingerprint`),
  independent of the kernel's display name, so textually renamed but
  structurally identical kernels share one entry;
* the synthesis-relevant pipeline options (seed, trials, candidate
  budget, verifier environments, strategy roster); and
* a code-version tag bumped whenever the template generator, strategy
  set or verifier change semantics.

Verified :class:`~repro.synthesis.cegis.CEGISResult` summaries (and
definitive failures) are persisted to a JSON store
(:mod:`repro.cache.store`) so warm runs skip synthesis entirely.
"""

from repro.cache.artifacts import ArtifactStore, artifact_key
from repro.cache.integrity import (
    CacheIntegrityWarning,
    StaleVersionWarning,
    quarantine_file,
    sha256_bytes,
)
from repro.cache.fingerprint import (
    CODE_VERSION,
    fingerprint_kernel,
    fingerprint_synthesis,
    options_signature,
)
from repro.cache.locks import FileLock, LockTimeout
from repro.cache.schedules import (
    SCHEDULE_FORMAT,
    ScheduleStore,
    machine_fingerprint,
    schedule_from_payload,
    schedule_key,
    schedule_to_payload,
)
from repro.cache.shards import (
    SHARD_FORMAT,
    ShardedStore,
    read_legacy_store,
    shard_path,
    shard_prefix,
)
from repro.cache.store import CachedOutcome, SynthesisCache

__all__ = [
    "ArtifactStore",
    "CODE_VERSION",
    "CacheIntegrityWarning",
    "CachedOutcome",
    "FileLock",
    "LockTimeout",
    "SCHEDULE_FORMAT",
    "SHARD_FORMAT",
    "ScheduleStore",
    "ShardedStore",
    "StaleVersionWarning",
    "SynthesisCache",
    "read_legacy_store",
    "shard_path",
    "shard_prefix",
    "artifact_key",
    "machine_fingerprint",
    "schedule_from_payload",
    "schedule_key",
    "schedule_to_payload",
    "fingerprint_kernel",
    "fingerprint_synthesis",
    "options_signature",
    "quarantine_file",
    "sha256_bytes",
]
