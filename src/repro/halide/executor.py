"""Numpy reference executor for the Halide-like DSL.

``realize`` evaluates a :class:`~repro.halide.lang.Func` over a
rectangular output domain given concrete numpy input buffers.  The
evaluation is vectorised: index expressions are evaluated to integer
coordinate arrays over the whole domain, and buffer reads become numpy
fancy-indexing.  The executor is the correctness backstop of the
pipeline — generated Halide code is checked against the original
Fortran kernel interpreted by :mod:`repro.semantics.exec` — and is also
the *schedule-blind reference* that the schedule-aware execution layer
(:mod:`repro.halide.lower`) is differentially checked against:
``realize`` is semantically the default-schedule wrapper, computing the
whole domain in one slab exactly as the lowered default schedule's
degenerate loop nest does.

Multi-stage pipelines (a ``Func`` whose definition references other
Funcs) are realized stage by stage: each producer is evaluated over the
bounding box of the indices its consumers request, unless its schedule
marks it ``inline``, in which case its definition is substituted into
the consumer (Halide's ``compute_inline``).

Integer index arithmetic follows the Fortran interpreter: division
truncates toward zero and ``mod`` takes the sign of the dividend (see
:mod:`repro.semantics.numeric`), unlike Python's flooring ``//`` and
``np.mod``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.halide.lang import (
    BinOp,
    Call,
    Const,
    Expr,
    Func,
    FuncRef,
    HalideError,
    ImageParam,
    ImageRef,
    Param,
    Var,
)
from repro.semantics.numeric import trunc_div, trunc_mod

Domain = Sequence[Tuple[int, int]]  # inclusive (lower, upper) per dimension


class OutOfBoundsError(HalideError):
    """Raised by strict-bounds loads that fall outside the input buffer."""


_NUMPY_FUNCS = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "abs": np.abs,
    "min": np.minimum,
    "max": np.maximum,
    "pow": np.power,
    "mod": trunc_mod,
}


class _Realizer:
    """Evaluate a stage-free Func definition over one rectangular box.

    The box need not be the whole output domain: the loop-nest
    interpreter of :mod:`repro.halide.loopir` evaluates one vector span
    at a time through the same code, which is what keeps the scheduled
    backends bit-identical to the schedule-blind reference (numpy
    elementwise operations depend only on the operand values, never on
    the slab they sit in).
    """

    def __init__(
        self,
        func: Func,
        box: Domain,
        inputs: Mapping[str, np.ndarray],
        input_origins: Mapping[str, Tuple[int, ...]],
        params: Mapping[str, float],
        strict_bounds: bool = False,
    ):
        self.func = func
        self.box = list(box)
        self.inputs = inputs
        self.input_origins = input_origins
        self.params = params
        self.strict_bounds = strict_bounds
        if func.definition is None:
            raise HalideError(f"Func {func.name!r} has no definition")
        if len(box) != func.dimensions:
            raise HalideError(
                f"domain rank {len(box)} does not match Func rank {func.dimensions}"
            )
        shape = tuple(hi - lo + 1 for lo, hi in box)
        grids = np.meshgrid(
            *[np.arange(lo, hi + 1) for lo, hi in box], indexing="ij"
        )
        self.coords: Dict[str, np.ndarray] = {
            var.name: grid for var, grid in zip(func.vars, grids)
        }
        self.shape = shape

    def evaluate(self, expr: Expr) -> np.ndarray:
        if isinstance(expr, Const):
            return np.full(self.shape, float(expr.value))
        if isinstance(expr, Var):
            if expr.name not in self.coords:
                raise HalideError(f"free variable {expr.name!r} in definition")
            return self.coords[expr.name].astype(float)
        if isinstance(expr, Param):
            if expr.name not in self.params:
                raise HalideError(f"no value supplied for scalar param {expr.name!r}")
            return np.full(self.shape, float(self.params[expr.name]))
        if isinstance(expr, BinOp):
            left = self.evaluate(expr.left)
            right = self.evaluate(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left / right
            raise HalideError(f"unknown operator {expr.op!r}")
        if isinstance(expr, Call):
            fn = _NUMPY_FUNCS.get(expr.func)
            if fn is None:
                raise HalideError(f"no numpy model for function {expr.func!r}")
            args = [self.evaluate(a) for a in expr.args]
            return fn(*args)
        if isinstance(expr, ImageRef):
            return self._load(expr)
        if isinstance(expr, FuncRef):
            raise HalideError(
                f"unresolved reference to stage {expr.func.name!r}; multi-stage "
                "pipelines are flattened before evaluation"
            )
        raise HalideError(f"cannot evaluate expression {expr!r}")

    def _index_array(self, expr: Expr) -> np.ndarray:
        """Evaluate an index expression to an integer coordinate array."""
        if isinstance(expr, Const):
            return np.full(self.shape, int(expr.value), dtype=np.int64)
        if isinstance(expr, Var):
            return self.coords[expr.name].astype(np.int64)
        if isinstance(expr, Param):
            return np.full(self.shape, int(self.params[expr.name]), dtype=np.int64)
        if isinstance(expr, BinOp):
            left = self._index_array(expr.left)
            right = self._index_array(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                # Fortran integer division truncates toward zero; numpy's
                # ``//`` floors, which differs for negative operands.
                return trunc_div(left, right)
            raise HalideError(f"unknown operator {expr.op!r} in index")
        if isinstance(expr, Call) and expr.func in {"min", "max"}:
            left = self._index_array(expr.args[0])
            right = self._index_array(expr.args[1])
            return np.minimum(left, right) if expr.func == "min" else np.maximum(left, right)
        if isinstance(expr, Call) and expr.func == "mod":
            left = self._index_array(expr.args[0])
            right = self._index_array(expr.args[1])
            return trunc_mod(left, right)
        raise HalideError(f"unsupported index expression {expr!r}")

    def _load(self, ref: ImageRef) -> np.ndarray:
        name = ref.image.name
        if name not in self.inputs:
            raise HalideError(f"no buffer supplied for input {name!r}")
        buffer = self.inputs[name]
        if buffer.ndim != ref.image.dimensions:
            raise HalideError(
                f"buffer for {name!r} has rank {buffer.ndim}, expected {ref.image.dimensions}"
            )
        origin = self.input_origins.get(name, (0,) * buffer.ndim)
        index_arrays = []
        for dim, index_expr in enumerate(ref.indices):
            coords = self._index_array(index_expr) - origin[dim]
            if self.strict_bounds:
                low = int(coords.min())
                high = int(coords.max())
                if low < 0 or high >= buffer.shape[dim]:
                    raise OutOfBoundsError(
                        f"read of {name!r} out of bounds in dimension {dim}: indices "
                        f"span [{low}, {high}] but the buffer extent is {buffer.shape[dim]} "
                        f"(origin {origin[dim]})"
                    )
            else:
                coords = np.clip(coords, 0, buffer.shape[dim] - 1)
            index_arrays.append(coords)
        return buffer[tuple(index_arrays)].astype(float)


# ---------------------------------------------------------------------------
# Multi-stage pipelines: inlining and stage-by-stage realization
# ---------------------------------------------------------------------------

def substitute_vars(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Rewrite every :class:`Var` in ``expr`` through ``mapping``."""
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, (Const, Param)):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute_vars(expr.left, mapping), substitute_vars(expr.right, mapping))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(substitute_vars(a, mapping) for a in expr.args))
    if isinstance(expr, ImageRef):
        return ImageRef(expr.image, tuple(substitute_vars(i, mapping) for i in expr.indices))
    if isinstance(expr, FuncRef):
        return FuncRef(expr.func, tuple(substitute_vars(i, mapping) for i in expr.indices))
    raise HalideError(f"cannot substitute into expression {expr!r}")


def inline_producers(expr: Expr, _visiting: Tuple[int, ...] = ()) -> Expr:
    """Substitute every ``inline``-scheduled producer into ``expr``.

    Inlining is a schedule choice (Halide's ``compute_inline``): the
    producer's definition, with its variables replaced by the consumer's
    index expressions, takes the place of the call.
    """
    if isinstance(expr, FuncRef) and expr.func.schedule.inline:
        producer = expr.func
        if id(producer) in _visiting:
            raise HalideError(f"cyclic Func pipeline through {producer.name!r}")
        if producer.definition is None:
            raise HalideError(f"Func {producer.name!r} has no definition")
        indices = tuple(inline_producers(i, _visiting) for i in expr.indices)
        body = inline_producers(producer.definition, _visiting + (id(producer),))
        mapping = {var.name: index for var, index in zip(producer.vars, indices)}
        return substitute_vars(body, mapping)
    if isinstance(expr, FuncRef):
        return FuncRef(expr.func, tuple(inline_producers(i, _visiting) for i in expr.indices))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, inline_producers(expr.left, _visiting), inline_producers(expr.right, _visiting))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(inline_producers(a, _visiting) for a in expr.args))
    if isinstance(expr, ImageRef):
        return ImageRef(expr.image, tuple(inline_producers(i, _visiting) for i in expr.indices))
    return expr


def flatten_stages(
    func: Func,
    domain: Domain,
    inputs: Mapping[str, np.ndarray],
    input_origins: Mapping[str, Tuple[int, ...]],
    params: Mapping[str, float],
    realize_stage,
    _visiting: Tuple[int, ...] = (),
) -> Tuple[Func, Dict[str, np.ndarray], Dict[str, Tuple[int, ...]]]:
    """Turn a multi-stage pipeline into a single-stage Func plus buffers.

    Inline-scheduled producers are substituted into the definition; every
    remaining producer is realized over the bounding box of the indices
    its consumers request (``realize_stage(producer, stage_domain)`` —
    the caller decides *how*: the reference evaluator or a scheduled
    backend) and replaced by an :class:`ImageRef` onto the stage buffer.
    Returns the flattened Func together with the stage buffers and their
    logical origins, ready to merge with the pipeline inputs.
    """
    if func.definition is None:
        raise HalideError(f"Func {func.name!r} has no definition")
    if not any(isinstance(node, FuncRef) for node in func.definition.walk()):
        return func, {}, {}
    definition = inline_producers(func.definition, _visiting + (id(func),))
    refs = [node for node in definition.walk() if isinstance(node, FuncRef)]
    if not refs:
        if definition is func.definition:
            return func, {}, {}
        flattened = Func(func.name)
        flattened[func.vars] = definition
        return flattened, {}, {}

    for ref in refs:
        for index in ref.indices:
            if any(isinstance(node, FuncRef) for node in index.walk()):
                raise HalideError(
                    "Func references inside index expressions are not supported"
                )

    # One shared coordinate grid over the consumer domain bounds every
    # producer: index expressions are evaluated over the whole domain and
    # their min/max give the stage's required box.
    probe = _Realizer(_stage_probe(func, definition), domain, inputs, input_origins, params)
    stage_domains: Dict[int, List[List[int]]] = {}
    stage_funcs: Dict[int, Func] = {}
    for ref in refs:
        producer = ref.func
        if id(producer) in _visiting + (id(func),):
            raise HalideError(f"cyclic Func pipeline through {producer.name!r}")
        if producer.definition is None:
            raise HalideError(f"Func {producer.name!r} has no definition")
        if len(ref.indices) != producer.dimensions:
            raise HalideError(
                f"stage {producer.name!r} has {producer.dimensions} dimensions, "
                f"got {len(ref.indices)} indices"
            )
        stage_funcs[id(producer)] = producer
        bounds = stage_domains.setdefault(
            id(producer), [[None, None] for _ in range(producer.dimensions)]
        )
        for dim, index in enumerate(ref.indices):
            array = probe._index_array(index)
            low, high = int(array.min()), int(array.max())
            if bounds[dim][0] is None or low < bounds[dim][0]:
                bounds[dim][0] = low
            if bounds[dim][1] is None or high > bounds[dim][1]:
                bounds[dim][1] = high

    stage_buffers: Dict[str, np.ndarray] = {}
    stage_origins: Dict[str, Tuple[int, ...]] = {}
    stage_names: Dict[int, str] = {}
    for key, producer in stage_funcs.items():
        name = producer.name
        while name in inputs or name in stage_buffers:
            name = f"_stage_{name}"
        stage_domain = [(lo, hi) for lo, hi in stage_domains[key]]
        stage_buffers[name] = realize_stage(producer, stage_domain)
        stage_origins[name] = tuple(lo for lo, _hi in stage_domain)
        stage_names[key] = name

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, FuncRef):
            name = stage_names[id(expr.func)]
            image = ImageParam(name, expr.func.dimensions)
            return ImageRef(image, tuple(rewrite(i) for i in expr.indices))
        if isinstance(expr, BinOp):
            return BinOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, Call):
            return Call(expr.func, tuple(rewrite(a) for a in expr.args))
        if isinstance(expr, ImageRef):
            return ImageRef(expr.image, tuple(rewrite(i) for i in expr.indices))
        return expr

    flattened = Func(func.name)
    flattened[func.vars] = rewrite(definition)
    return flattened, stage_buffers, stage_origins


def _stage_probe(func: Func, definition: Expr) -> Func:
    """A throwaway Func with ``func``'s vars, used to evaluate stage indices."""
    probe = Func(f"_probe_{func.name}")
    probe[func.vars] = definition
    return probe


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def realize_box(
    func: Func,
    box: Domain,
    inputs: Mapping[str, np.ndarray],
    input_origins: Mapping[str, Tuple[int, ...]],
    params: Mapping[str, float],
    strict_bounds: bool = False,
) -> np.ndarray:
    """Evaluate a stage-free Func over one rectangular box (slab evaluation).

    This is the computational core shared by :func:`realize` (one box =
    the whole domain) and the loop-nest interpreter backend (one box per
    vector span).
    """
    realizer = _Realizer(func, box, inputs, input_origins, params, strict_bounds)
    return realizer.evaluate(func.definition)


def realize(
    func: Func,
    domain: Domain,
    inputs: Mapping[str, np.ndarray],
    input_origins: Optional[Mapping[str, Tuple[int, ...]]] = None,
    params: Optional[Mapping[str, float]] = None,
    strict_bounds: bool = False,
) -> np.ndarray:
    """Evaluate ``func`` over ``domain`` and return the output buffer.

    ``domain`` is a list of inclusive (lower, upper) pairs in *logical*
    coordinates; ``input_origins`` gives, per input buffer, the logical
    coordinate of element ``[0, 0, ...]`` (Fortran arrays with
    non-unit lower bounds).  Reads outside a buffer are clamped by
    default, which never matters for verified summaries (their index
    ranges match the modified region) but keeps the executor total;
    ``strict_bounds=True`` raises :class:`OutOfBoundsError` instead so
    lowering bugs cannot hide behind the clamp (the test-suites run in
    strict mode).

    ``realize`` is schedule-blind: it computes the whole domain in one
    numpy slab, which is exactly what the default schedule's loop nest
    degenerates to.  The schedule-aware path is
    :func:`repro.halide.lower.realize_scheduled`, whose results must be
    bit-identical to this reference for every valid schedule.
    """
    input_origins = dict(input_origins or {})
    params = dict(params or {})
    return _realize_reference(func, domain, inputs, input_origins, params, strict_bounds, ())


def _realize_reference(
    func: Func,
    domain: Domain,
    inputs: Mapping[str, np.ndarray],
    input_origins: Mapping[str, Tuple[int, ...]],
    params: Mapping[str, float],
    strict_bounds: bool,
    visiting: Tuple[int, ...],
) -> np.ndarray:
    def realize_stage(producer: Func, stage_domain: Domain) -> np.ndarray:
        return _realize_reference(
            producer, stage_domain, inputs, input_origins, params,
            strict_bounds, visiting + (id(func),),
        )

    flattened, stage_buffers, stage_origins = flatten_stages(
        func, domain, inputs, input_origins, params, realize_stage, visiting
    )
    merged_inputs = dict(inputs)
    merged_inputs.update(stage_buffers)
    merged_origins = dict(input_origins)
    merged_origins.update(stage_origins)
    return realize_box(flattened, domain, merged_inputs, merged_origins, params, strict_bounds)
