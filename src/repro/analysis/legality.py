"""Schedule-legality certification for lowered Funcs.

A :class:`~repro.halide.schedule.Schedule` only reorders *traversal*;
it must never change what a cell's value is.  For the pure Funcs the
lifting pipeline produces — one store per output coordinate, with an
identity store index — the only way a schedule can go wrong is through
the output array itself: when the definition *reads the array it is
defining* (an in-place source update like ``a(i) = a(i)*0.5`` lifts to
a Func whose input image is named like the Func), a non-zero read
offset means some iteration observes a cell another iteration writes,
and then the traversal order — parallel slabs, ``dim_order``
permutations, tiling — becomes observable.

The checker certifies a ``(Func, Schedule)`` pair with a three-valued
verdict:

* ``LEGAL`` — proved safe: either the Func never reads its own output
  array, or every such read is provably the identity cell (the
  Fourier–Motzkin engine refutes both strict orderings of
  ``index − coordinate``).
* ``ILLEGAL`` — proved unsafe: a self-read with a provably non-zero
  offset exists (on the parallel axis it is a race; on any axis it
  makes reorder/tiling observable for in-place consumption).
* ``UNKNOWN`` — the index shape defeated the analysis.  **Unknown is
  conservative**: every consumer (lowering, the autotuner's pruner,
  the native backend's threaded emission) treats it exactly like
  ``ILLEGAL``.

The same contract as the shared engine (:mod:`repro.analysis.presburger`)
it is built on: a ``LEGAL`` answer is a proof, everything else is a
refusal to certify, never a claim of a bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.presburger import constraints_infeasible
from repro.halide.lang import (
    BinOp,
    Call,
    Const,
    Func,
    FuncRef,
    ImageRef,
    Param,
    Var,
)
from repro.halide.schedule import Schedule, ScheduleError
from repro.symbolic.expr import Expr as SymExpr, as_expr, call as sym_call, sym
from repro.symbolic.simplify import simplify

LEGAL = "legal"
ILLEGAL = "illegal"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class LegalityReport:
    """The verdict for one ``(Func, Schedule)`` pair, with its reasons."""

    func: str
    schedule: str
    verdict: str
    reasons: Tuple[str, ...] = ()

    @property
    def legal(self) -> bool:
        return self.verdict == LEGAL

    @property
    def certified(self) -> bool:
        """Alias making call sites read as intent: only LEGAL certifies."""
        return self.verdict == LEGAL

    def to_json(self) -> Dict:
        return {
            "func": self.func,
            "schedule": self.schedule,
            "verdict": self.verdict,
            "reasons": list(self.reasons),
        }


class ScheduleLegalityError(ScheduleError):
    """A schedule was rejected by the static legality checker."""

    def __init__(self, report: LegalityReport):
        self.report = report
        reasons = "; ".join(report.reasons) or "no reason recorded"
        super().__init__(
            f"schedule [{report.schedule}] is not certified legal for "
            f"Func {report.func!r} ({report.verdict}): {reasons}"
        )


# ---------------------------------------------------------------------------
# Halide expressions -> symbolic expressions
# ---------------------------------------------------------------------------


class _Unsupported(Exception):
    pass


def _halide_index_to_sym(expr) -> SymExpr:
    """Convert an index expression to the symbolic algebra (or raise)."""
    if isinstance(expr, Const):
        return as_expr(expr.value)
    if isinstance(expr, Var):
        return sym(expr.name)
    if isinstance(expr, Param):
        return sym(expr.name)
    if isinstance(expr, BinOp) and expr.op in {"+", "-", "*"}:
        left = _halide_index_to_sym(expr.left)
        right = _halide_index_to_sym(expr.right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    if isinstance(expr, Call) and expr.func in {"min", "max"} and len(expr.args) == 2:
        return sym_call(expr.func, *(_halide_index_to_sym(a) for a in expr.args))
    raise _Unsupported(repr(expr))


# ---------------------------------------------------------------------------
# Certification
# ---------------------------------------------------------------------------


def order_preserving(schedule: Schedule, dimensions: int) -> bool:
    """Does this schedule traverse cells in the reference order?

    Serial, untiled, natural-order schedules *are* the reference
    semantics — vectorize/unroll only strip-mine the innermost loop
    without changing visit order, so they stay order-preserving.  Such
    schedules are legal for any Func by definition.
    """
    if schedule.parallel_dim is not None:
        return False
    if schedule.tile_sizes and any(schedule.tile_sizes):
        return False
    if schedule.dim_order is not None and tuple(schedule.dim_order) != tuple(
        range(dimensions)
    ):
        return False
    return True


def certify(
    func: Func,
    schedule: Optional[Schedule] = None,
    output: Optional[str] = None,
) -> LegalityReport:
    """Certify that ``schedule`` preserves ``func``'s semantics.

    ``output`` names the buffer the Func's result is stored into, when
    it differs from the Func's own name — lifted stencils are named
    ``{array}_stencil`` but store into ``{array}``, and the self-read
    detection must use the *storage* name.

    Sound and incomplete in the usual direction: ``LEGAL`` is a proof,
    ``ILLEGAL`` is a witness, ``UNKNOWN`` means "could not analyze" and
    must be treated as illegal by anything acting on the verdict.
    """
    schedule = schedule if schedule is not None else func.schedule
    described = schedule.describe()

    def report(verdict: str, *reasons: str) -> LegalityReport:
        return LegalityReport(func.name, described, verdict, tuple(reasons))

    if func.definition is None:
        return report(UNKNOWN, "Func has no definition")
    try:
        schedule.validate(func.dimensions)
    except ScheduleError as exc:
        return report(ILLEGAL, f"schedule does not fit the Func: {exc}")
    if order_preserving(schedule, func.dimensions):
        return report(LEGAL, "traversal equals the reference order")
    if any(isinstance(node, FuncRef) for node in func.definition.walk()):
        return report(
            UNKNOWN,
            "multi-stage pipeline: flatten (realize_scheduled) before certifying",
        )

    output_names = {func.name, output} if output else {func.name}
    self_reads = [
        node
        for node in func.definition.walk()
        if isinstance(node, ImageRef) and node.image.name in output_names
    ]
    if not self_reads:
        return report(
            LEGAL,
            "pure stage: the output buffer is disjoint from every input read",
        )

    # The Func reads the array it defines.  Each read index must be
    # provably the identity cell for traversal order to be unobservable.
    var_names = [v.name for v in func.vars]
    int_syms = set(var_names)
    reasons: List[str] = []
    verdict = LEGAL
    for ref in self_reads:
        if len(ref.indices) != func.dimensions:
            return report(
                UNKNOWN, f"self-read {ref!r} has mismatched rank"
            )
        for dim, index in enumerate(ref.indices):
            coordinate = sym(var_names[dim])
            try:
                index_sym = _halide_index_to_sym(index)
            except _Unsupported:
                verdict = UNKNOWN
                reasons.append(
                    f"self-read index {index!r} (dim {dim}) is outside the "
                    "analyzable fragment"
                )
                continue
            diff = simplify(index_sym - coordinate)
            # Provably identity: both strict orderings are infeasible.
            above = constraints_infeasible([(diff, True)], int_syms)
            below = constraints_infeasible([(simplify(as_expr(0) - diff), True)], int_syms)
            if above and below:
                continue
            # Provably *not* identity: equality itself is infeasible.
            equality_infeasible = constraints_infeasible(
                [(diff, False), (simplify(as_expr(0) - diff), False)], int_syms
            )
            axis_note = (
                " on the parallel axis (a data race)"
                if schedule.parallel_dim == dim
                else ""
            )
            if equality_infeasible:
                return report(
                    ILLEGAL,
                    f"in-place read {ref!r} has a provably non-zero offset in "
                    f"dim {dim}{axis_note}: traversal order is observable",
                )
            verdict = UNKNOWN
            reasons.append(
                f"cannot prove self-read index {index!r} (dim {dim}) is the "
                f"identity cell{axis_note}"
            )
    if verdict == LEGAL:
        return report(
            LEGAL,
            "every read of the output array is provably the identity cell",
        )
    return LegalityReport(func.name, described, verdict, tuple(reasons))


def parallel_band_race_free(nest) -> bool:
    """May the native backend thread this nest's parallel band?

    True only when (a) the schedule is certified ``LEGAL`` and (b) the
    parallel loop's bounds are entry-scope — pure functions of the
    domain, never of an enclosing loop variable — so a worker can clamp
    the band to its slab without re-deriving outer state.  Lowering
    always marks the *outermost* loop of the parallel axis, whose
    bounds are domain-pure by construction; the structural check here
    is defensive, not decorative.
    """
    from repro.halide.loopir import Loop, LoopVar

    parallel = None
    for loop in nest.loops():
        if loop.kind == "parallel":
            parallel = loop
            break
    if parallel is None:
        return False

    def pure(bound) -> bool:
        from repro.halide.loopir import Clamped, DomainHi, DomainLo, Shifted

        if isinstance(bound, (DomainLo, DomainHi)):
            return True
        if isinstance(bound, Shifted):
            return pure(bound.base)
        if isinstance(bound, Clamped):
            return pure(bound.base) and pure(bound.limit)
        return False  # LoopVar or anything new: not entry-scope

    if not (pure(parallel.lower) and pure(parallel.upper)):
        return False
    return certify(nest.func, nest.schedule).legal


# ---------------------------------------------------------------------------
# Cached checking for the autotuner
# ---------------------------------------------------------------------------


def canonical_key(schedule: Schedule, dimensions: int) -> Tuple:
    """A key identifying schedules that lower to the same loop nest.

    Distinct :class:`Schedule` values frequently describe the same
    traversal — ``dim_order=None`` vs the explicit natural order, tile
    size 0 vs no ``tile_sizes`` entry, unroll/vector 1 vs absent.  The
    autotuner uses this key to skip re-measuring a traversal it has
    already timed.
    """
    order = tuple(schedule.dim_order) if schedule.dim_order is not None else tuple(
        range(dimensions)
    )
    tiles = tuple(schedule.tile_sizes) if schedule.tile_sizes else (0,) * dimensions
    return (
        order,
        tiles,
        schedule.vector_width,
        schedule.unroll,
        schedule.parallel_dim,
        schedule.gpu,
        schedule.gpu_block if schedule.gpu else None,
        schedule.inline,
    )


class ScheduleChecker:
    """Memoized legality front-end the autotuner threads through its loop.

    One checker is built per Func being tuned; verdicts are cached by
    the schedule's canonical key so the (cheap but not free) FM queries
    run once per distinct traversal.
    """

    def __init__(self, func: Func, output: Optional[str] = None):
        self.func = func
        self.output = output
        self._verdicts: Dict[Tuple, LegalityReport] = {}

    def key(self, schedule: Schedule) -> Tuple:
        return canonical_key(schedule, self.func.dimensions)

    def check(self, schedule: Schedule) -> LegalityReport:
        key = self.key(schedule)
        report = self._verdicts.get(key)
        if report is None:
            report = certify(self.func, schedule, output=self.output)
            self._verdicts[key] = report
        return report

    def is_legal(self, schedule: Schedule) -> bool:
        """Unknown-is-conservative: only a ``LEGAL`` verdict passes."""
        return self.check(schedule).legal
