"""Tokenizer for the Fortran subset accepted by the frontend.

Fortran is case-insensitive; identifiers and keywords are lower-cased
during lexing.  Comments beginning with ``!`` are dropped, except for
``!STNG: assume(...)`` annotations (§5.2), which are emitted as special
``ANNOTATION`` tokens so the parser can attach them to the enclosing
procedure.  Free-form continuation lines (trailing ``&``) are joined.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source line for error reporting."""

    kind: str
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


KEYWORDS = {
    "subroutine",
    "procedure",
    "function",
    "end",
    "do",
    "enddo",
    "if",
    "then",
    "else",
    "elseif",
    "endif",
    "real",
    "integer",
    "logical",
    "double",
    "precision",
    "dimension",
    "kind",
    "intent",
    "in",
    "out",
    "inout",
    "pointer",
    "parameter",
    "implicit",
    "none",
    "call",
    "return",
    "exit",
    "cycle",
    "continue",
    "goto",
    "while",
    "allocatable",
    "target",
}

_TOKEN_RE = re.compile(
    r"""
      (?P<NUMBER>\d+\.\d*([dDeE][+-]?\d+)?|\.\d+([dDeE][+-]?\d+)?|\d+([dDeE][+-]?\d+)?)
    | (?P<IDENT>[A-Za-z_][A-Za-z_0-9]*)
    | (?P<DCOLON>::)
    | (?P<POW>\*\*)
    | (?P<RELOP>==|/=|<=|>=|\.eq\.|\.ne\.|\.lt\.|\.le\.|\.gt\.|\.ge\.|<|>)
    | (?P<LOGOP>\.and\.|\.or\.|\.not\.)
    | (?P<OP>[-+*/=(),:%])
    | (?P<WS>[ \t]+)
    """,
    re.VERBOSE | re.IGNORECASE,
)

_ANNOTATION_RE = re.compile(r"!\s*STNG\s*:\s*assume\s*\((?P<expr>.*)\)\s*$", re.IGNORECASE)


class LexError(Exception):
    """Raised when the lexer encounters a character it cannot tokenize."""


def _join_continuations(source: str) -> List[tuple]:
    """Split into logical lines, joining ``&`` continuations; keep line numbers."""
    logical: List[tuple] = []
    pending = ""
    pending_line: Optional[int] = None
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()
        if pending:
            line = stripped
        if line.endswith("&"):
            pending += line[:-1] + " "
            if pending_line is None:
                pending_line = lineno
            continue
        if pending:
            logical.append((pending_line, pending + line))
            pending = ""
            pending_line = None
        else:
            logical.append((lineno, raw))
    if pending:
        logical.append((pending_line, pending))
    return logical


def tokenize(source: str) -> List[Token]:
    """Tokenize Fortran source into a flat token list.

    Each logical line is terminated by a ``NEWLINE`` token; the token
    stream ends with an ``EOF`` token.
    """
    tokens: List[Token] = []
    for lineno, line in _join_continuations(source):
        # Annotations are whole-line comments we must preserve.
        annotation = _ANNOTATION_RE.search(line)
        if annotation is not None:
            tokens.append(Token("ANNOTATION", annotation.group("expr").strip(), lineno))
            tokens.append(Token("NEWLINE", "\n", lineno))
            continue
        # Strip trailing comments (no string literals in our subset).
        comment_pos = line.find("!")
        if comment_pos != -1:
            line = line[:comment_pos]
        if not line.strip():
            continue
        pos = 0
        emitted = False
        while pos < len(line):
            match = _TOKEN_RE.match(line, pos)
            if match is None:
                raise LexError(f"line {lineno}: unexpected character {line[pos]!r}")
            pos = match.end()
            kind = match.lastgroup
            text = match.group()
            if kind == "WS":
                continue
            if kind == "IDENT":
                lowered = text.lower()
                kind = "KEYWORD" if lowered in KEYWORDS else "IDENT"
                text = lowered
            elif kind in {"RELOP", "LOGOP"}:
                text = text.lower()
            tokens.append(Token(kind, text, lineno))
            emitted = True
        if emitted:
            tokens.append(Token("NEWLINE", "\n", lineno))
    tokens.append(Token("EOF", "", len(source.splitlines()) + 1))
    return tokens


def iter_logical_lines(tokens: List[Token]) -> Iterator[List[Token]]:
    """Group a token stream into logical lines (without NEWLINE/EOF tokens)."""
    current: List[Token] = []
    for token in tokens:
        if token.kind in {"NEWLINE", "EOF"}:
            if current:
                yield current
                current = []
        else:
            current.append(token)
    if current:
        yield current
