"""Machine models: the experimental platform of §6.1.

The paper's cluster nodes are dual-socket Intel Xeon E5-2695v2 machines
(24 cores at 2.4 GHz, 128 GB of memory); GPU experiments use an Nvidia
K80.  The CPU model is a simple roofline: a kernel's runtime is the
maximum of its compute time (flops over attainable flop rate) and its
memory time (bytes over attainable bandwidth), where the attainable
rates depend on how much parallelism, vectorisation and locality the
compiler/schedule extracts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class MachineModel:
    """A CPU node described by its peak rates."""

    name: str
    cores: int
    frequency_ghz: float
    vector_width: int               # doubles per SIMD lane
    flops_per_cycle_per_core: float  # scalar FMA throughput
    memory_bandwidth_gbs: float
    cache_bandwidth_gbs: float       # effective bandwidth when tiles fit in cache
    parallel_overhead_us: float = 25.0

    def peak_gflops(self, cores: int, vector_width: int) -> float:
        """Attainable GFLOP/s for a given degree of parallelism and SIMD width."""
        cores = max(1, min(cores, self.cores))
        vector_width = max(1, min(vector_width, self.vector_width))
        return cores * self.frequency_ghz * self.flops_per_cycle_per_core * vector_width

    def attainable_bandwidth(self, cores: int, locality: float) -> float:
        """Attainable GB/s: memory bandwidth blended toward cache bandwidth by locality.

        ``locality`` in [0, 1] expresses how much of the working set is
        served from cache thanks to tiling/fusion; a single core cannot
        saturate the memory system, so bandwidth also scales (sub-linearly)
        with the number of active cores.
        """
        cores = max(1, min(cores, self.cores))
        locality = min(max(locality, 0.0), 1.0)
        core_fraction = min(1.0, 0.25 + 0.75 * (cores / self.cores))
        stream = self.memory_bandwidth_gbs * core_fraction
        return stream * (1.0 - locality) + self.cache_bandwidth_gbs * locality


def fit_parallel_fraction(times: Mapping[int, float]) -> float:
    """Amdahl's-law fit of the parallel fraction from measured timings.

    ``times`` maps a thread count to measured seconds and must include
    ``1`` (the serial baseline).  Inverting Amdahl's law, each
    multi-thread point ``t(n) = t(1) * ((1 - p) + p / n)`` yields an
    estimate ``p = (1 - t(n)/t(1)) / (1 - 1/n)``; the estimates are
    clamped to [0, 1] (timing noise can push a raw estimate outside the
    physical range) and averaged.  This turns the thread-sweep rows the
    benchmarks measure into the parallelism ground truth the roofline
    model's core-scaling assumptions can be validated against.

    Returns 0.0 when no usable multi-thread point exists.
    """
    baseline = times.get(1)
    if baseline is None or baseline <= 0.0:
        return 0.0
    estimates = []
    for threads, seconds in times.items():
        if threads <= 1 or seconds <= 0.0:
            continue
        estimate = (1.0 - seconds / baseline) / (1.0 - 1.0 / threads)
        estimates.append(min(max(estimate, 0.0), 1.0))
    if not estimates:
        return 0.0
    return sum(estimates) / len(estimates)


XEON_NODE = MachineModel(
    name="2x Xeon E5-2695v2 (24 cores, 2.4 GHz)",
    cores=24,
    frequency_ghz=2.4,
    vector_width=4,                 # AVX over doubles
    flops_per_cycle_per_core=2.0,   # mul + add
    memory_bandwidth_gbs=95.0,
    cache_bandwidth_gbs=400.0,
)


@dataclass(frozen=True)
class GPUModelSpec:
    """K80-class accelerator parameters (also used by repro.halide.gpu)."""

    name: str
    peak_gflops: float
    memory_bandwidth_gbs: float
    pcie_bandwidth_gbs: float
    kernel_launch_us: float
    occupancy: float


GPU_K80 = GPUModelSpec(
    name="Nvidia K80 (one GK210 die)",
    peak_gflops=1400.0,
    memory_bandwidth_gbs=240.0,
    # Effective host<->device rate with pinned buffers and copy/compute overlap.
    pcie_bandwidth_gbs=22.0,
    kernel_launch_us=12.0,
    occupancy=0.55,
)
