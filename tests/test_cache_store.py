"""The content-addressed synthesis cache: fingerprints, store, pipeline wiring."""

from __future__ import annotations

import json

import pytest

from repro.cache import (
    CODE_VERSION,
    SynthesisCache,
    fingerprint_kernel,
    fingerprint_synthesis,
)
from repro.cache.serialize import (
    expr_from_json,
    expr_to_json,
    result_from_payload,
    result_to_payload,
)
from repro.frontend import identify_candidates, parse_source
from repro.frontend.lowering import lower_candidate
from repro.pipeline import PipelineOptions, STNGPipeline, report_signature
from repro.symbolic.expr import cell, const, sym
from repro.synthesis import cegis
from repro.synthesis.cegis import SynthesisFailure, SynthesisTimeout, synthesize_kernel

TWO_POINT = """
procedure sten(imin,imax,jmin,jmax,a,b)
real (kind=8), dimension(imin:imax,jmin:jmax) :: a
real (kind=8), dimension(imin:imax,jmin:jmax) :: b
do j=jmin,jmax
do i=imin+1,imax
a(i,j) = b(i,j) + b(i-1,j)
enddo
enddo
end procedure
"""

# Same kernel with one body edit (different neighbour offset).
TWO_POINT_EDITED = TWO_POINT.replace("b(i-1,j)", "b(i+1,j)")

# Same kernel, renamed procedure: structurally identical content.
TWO_POINT_RENAMED = TWO_POINT.replace("procedure sten", "procedure nets")


def _kernel(source: str):
    return lower_candidate(identify_candidates(parse_source(source)).candidates[0])


def _config(**overrides):
    config = {
        "trials": 2,
        "seed": 1,
        "max_candidates": 2000,
        "quick_samples": 2,
        "verifier_environments": 1,
        "strategies": ["perfect_nest", "cross", "box", "default"],
    }
    config.update(overrides)
    return config


@pytest.fixture()
def counted_synthesis(monkeypatch):
    """Count real (uncached) synthesis runs."""
    calls = {"count": 0}
    real = cegis.synthesize_kernel_uncached

    def counting(*args, **kwargs):
        calls["count"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(cegis, "synthesize_kernel_uncached", counting)
    return calls


class TestFingerprint:
    def test_stable_across_lowerings(self):
        assert fingerprint_kernel(_kernel(TWO_POINT)) == fingerprint_kernel(_kernel(TWO_POINT))

    def test_changes_on_body_edit(self):
        assert fingerprint_kernel(_kernel(TWO_POINT)) != fingerprint_kernel(
            _kernel(TWO_POINT_EDITED)
        )

    def test_content_addressed_ignores_name(self):
        # A renamed but structurally identical kernel shares the address.
        assert fingerprint_kernel(_kernel(TWO_POINT)) == fingerprint_kernel(
            _kernel(TWO_POINT_RENAMED)
        )

    def test_changes_on_option_change(self):
        kernel = _kernel(TWO_POINT)
        base = fingerprint_synthesis(kernel, _config())
        assert base != fingerprint_synthesis(kernel, _config(trials=3))
        assert base != fingerprint_synthesis(kernel, _config(seed=2))
        assert base != fingerprint_synthesis(kernel, _config(strategies=["default"]))

    def test_changes_on_code_version(self):
        kernel = _kernel(TWO_POINT)
        assert fingerprint_synthesis(kernel, _config()) != fingerprint_synthesis(
            kernel, _config(), code_version=CODE_VERSION + "-next"
        )


class TestSerialization:
    def test_expr_round_trip(self):
        expr = (sym("i") + const(2)) * cell("b", sym("i") - 1, sym("j")) / const(3) - sym("q")
        data = json.loads(json.dumps(expr_to_json(expr)))
        assert expr_from_json(data) == expr

    def test_result_round_trip(self):
        kernel = _kernel(TWO_POINT)
        result = synthesize_kernel(kernel, seed=1, verifier_environments=1)
        payload = json.loads(json.dumps(result_to_payload(result)))
        restored = result_from_payload(payload, kernel)
        assert restored.candidate.post == result.candidate.post
        assert restored.candidate.invariants == result.candidate.invariants
        assert restored.strategy == result.strategy
        assert restored.control_bits == result.control_bits
        assert restored.stats == result.stats


class TestStore:
    def test_hit_skips_synthesis(self, tmp_path, counted_synthesis):
        kernel = _kernel(TWO_POINT)
        cache = SynthesisCache(tmp_path / "store.json")
        first = synthesize_kernel(kernel, seed=1, verifier_environments=1, cache=cache)
        assert counted_synthesis["count"] == 1
        second = synthesize_kernel(kernel, seed=1, verifier_environments=1, cache=cache)
        assert counted_synthesis["count"] == 1  # cache hit: no new synthesis
        assert cache.hits == 1 and cache.misses == 1
        assert second.candidate.post == first.candidate.post

    def test_persists_across_instances(self, tmp_path, counted_synthesis):
        kernel = _kernel(TWO_POINT)
        path = tmp_path / "store.json"
        synthesize_kernel(kernel, seed=1, verifier_environments=1, cache=SynthesisCache(path))
        warm = SynthesisCache(path)
        synthesize_kernel(kernel, seed=1, verifier_environments=1, cache=warm)
        assert counted_synthesis["count"] == 1
        assert warm.hits == 1

    def test_option_change_misses(self, tmp_path, counted_synthesis):
        kernel = _kernel(TWO_POINT)
        cache = SynthesisCache(tmp_path / "store.json")
        synthesize_kernel(kernel, seed=1, verifier_environments=1, cache=cache)
        synthesize_kernel(kernel, seed=1, trials=3, verifier_environments=1, cache=cache)
        assert counted_synthesis["count"] == 2

    def test_corrupted_store_falls_back_to_cold(self, tmp_path, counted_synthesis):
        from repro.cache import CacheIntegrityWarning

        kernel = _kernel(TWO_POINT)
        path = tmp_path / "store.json"
        path.write_text("{not json at all", encoding="utf-8")
        with pytest.warns(CacheIntegrityWarning):
            cache = SynthesisCache(path)
        result = synthesize_kernel(kernel, seed=1, verifier_environments=1, cache=cache)
        assert result.verification.ok
        assert counted_synthesis["count"] == 1
        # The corrupt file was quarantined, not overwritten: the evidence
        # survives next to a fresh store holding the cold result.
        quarantined = path.with_name(path.name + ".corrupt-1")
        assert quarantined.read_text(encoding="utf-8") == "{not json at all"
        assert len(SynthesisCache(path)) == 1

    def test_version_mismatch_invalidates(self, tmp_path, counted_synthesis):
        kernel = _kernel(TWO_POINT)
        path = tmp_path / "store.json"
        synthesize_kernel(
            kernel, seed=1, verifier_environments=1, cache=SynthesisCache(path)
        )
        stale = SynthesisCache(path, code_version=CODE_VERSION + "-next")
        assert len(stale) == 0
        synthesize_kernel(kernel, seed=1, verifier_environments=1, cache=stale)
        assert counted_synthesis["count"] == 2

    def test_version_mismatch_warns_with_discarded_count(self, tmp_path):
        """Version skew is loud now: a StaleVersionWarning names the count."""
        from repro.cache import StaleVersionWarning

        path = tmp_path / "store.json"
        seeded = SynthesisCache(path, autosave=False)
        seeded.record_failure("a" * 64, "m1", "k1")
        seeded.record_failure("b" * 64, "m2", "k2")
        seeded.save()
        with pytest.warns(StaleVersionWarning, match="discarding 2 stale"):
            stale = SynthesisCache(path, code_version=CODE_VERSION + "-next")
        assert len(stale) == 0
        # The file is not quarantined — skew is invalidation, not damage.
        assert path.is_file()

    def test_failure_is_cached(self, tmp_path, counted_synthesis):
        kernel = _kernel(TWO_POINT)
        cache = SynthesisCache(tmp_path / "store.json")
        with pytest.raises(SynthesisFailure) as first:
            synthesize_kernel(kernel, seed=1, strategies=[], cache=cache)
        with pytest.raises(SynthesisFailure) as second:
            synthesize_kernel(kernel, seed=1, strategies=[], cache=cache)
        assert counted_synthesis["count"] == 1
        assert str(first.value) == str(second.value)

    def test_failure_caching_can_be_disabled(self, tmp_path, counted_synthesis):
        kernel = _kernel(TWO_POINT)
        cache = SynthesisCache(tmp_path / "store.json", cache_failures=False)
        for _ in range(2):
            with pytest.raises(SynthesisFailure):
                synthesize_kernel(kernel, seed=1, strategies=[], cache=cache)
        assert counted_synthesis["count"] == 2

    def test_persisted_failures_hidden_when_disabled(self, tmp_path, counted_synthesis):
        # A failure recorded by an earlier (cache_failures=True) run must not
        # be replayed once failure caching is turned off.
        kernel = _kernel(TWO_POINT)
        path = tmp_path / "store.json"
        with pytest.raises(SynthesisFailure):
            synthesize_kernel(kernel, seed=1, strategies=[], cache=SynthesisCache(path))
        retry = SynthesisCache(path, cache_failures=False)
        with pytest.raises(SynthesisFailure):
            synthesize_kernel(kernel, seed=1, strategies=[], cache=retry)
        assert counted_synthesis["count"] == 2

    def test_custom_strategy_objects_bypass_cache(self, tmp_path, counted_synthesis):
        # The cache keys strategies by name; a caller-supplied Strategy with
        # a built-in's name but different behaviour must neither hit nor
        # record entries.
        from repro.synthesis.strategies import STRATEGIES, Strategy

        kernel = _kernel(TWO_POINT)
        cache = SynthesisCache(tmp_path / "store.json")
        impostor = Strategy("default", lambda _kernel, templates: templates)
        synthesize_kernel(
            kernel, seed=1, verifier_environments=1, strategies=[impostor], cache=cache
        )
        assert len(cache) == 0
        synthesize_kernel(
            kernel, seed=1, verifier_environments=1, strategies=list(STRATEGIES), cache=cache
        )
        assert len(cache) == 1
        assert counted_synthesis["count"] == 2

    def test_timeouts_are_never_cached(self, tmp_path, counted_synthesis):
        # Timeout failures are wall-clock-dependent; a warm run re-attempts.
        kernel = _kernel(TWO_POINT)
        cache = SynthesisCache(tmp_path / "store.json")
        for _ in range(2):
            with pytest.raises(SynthesisTimeout):
                synthesize_kernel(kernel, seed=1, timeout=0.0, cache=cache)
        assert counted_synthesis["count"] == 2
        assert len(cache) == 0


class TestPipelineIntegration:
    def test_warm_pipeline_report_is_identical(self, tmp_path, counted_synthesis):
        options = PipelineOptions(seed=1, autotune_budget=20, verifier_environments=1)
        path = tmp_path / "store.json"
        cold = STNGPipeline(options, cache=SynthesisCache(path)).lift_source(
            TWO_POINT, suite="demo", points=64
        )
        warm = STNGPipeline(options, cache=SynthesisCache(path)).lift_source(
            TWO_POINT, suite="demo", points=64
        )
        assert counted_synthesis["count"] == 1
        assert [report_signature(r) for r in warm] == [report_signature(r) for r in cold]


class TestFileLock:
    """Crash-reclaimable locking for the store's read-merge-replace save."""

    def test_acquire_release_round_trip(self, tmp_path):
        from repro.cache import FileLock

        lock = FileLock(tmp_path / "x.lock")
        with lock:
            assert lock.held
            assert (tmp_path / "x.lock").exists()
        assert not lock.held
        assert not (tmp_path / "x.lock").exists()

    def test_held_lock_times_out(self, tmp_path):
        from repro.cache import FileLock, LockTimeout

        holder = FileLock(tmp_path / "x.lock")
        holder.acquire()
        try:
            waiter = FileLock(tmp_path / "x.lock", timeout=0.2)
            with pytest.raises(LockTimeout):
                waiter.acquire()
        finally:
            holder.release()

    def test_dead_holder_is_reclaimed(self, tmp_path):
        import subprocess
        import sys
        import time

        from repro.cache import FileLock

        # A real, definitely-dead pid: spawn a process and wait for it.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        lock_path = tmp_path / "x.lock"
        lock_path.write_text(f"{proc.pid} {time.time()}")
        lock = FileLock(lock_path, timeout=5.0)
        started = time.monotonic()
        lock.acquire()  # reclaims instead of deadlocking
        assert time.monotonic() - started < 2.0
        lock.release()

    def test_old_lock_from_live_pid_is_reclaimed(self, tmp_path):
        import os
        import time

        from repro.cache import FileLock

        lock_path = tmp_path / "x.lock"
        # Our own (alive) pid, but acquired far beyond stale_after:
        # covers pid reuse after a crash.
        lock_path.write_text(f"{os.getpid()} {time.time() - 100.0}")
        lock = FileLock(lock_path, timeout=5.0, stale_after=1.0)
        lock.acquire()
        lock.release()

    def test_unparseable_lock_file_reclaimed_by_mtime(self, tmp_path):
        import os
        import time

        from repro.cache import FileLock

        lock_path = tmp_path / "x.lock"
        lock_path.write_text("garbage")
        old = time.time() - 100.0
        os.utime(lock_path, (old, old))
        lock = FileLock(lock_path, timeout=5.0, stale_after=1.0)
        lock.acquire()
        lock.release()

    def test_save_reclaims_lock_of_killed_writer(self, tmp_path):
        """A writer SIGKILLed mid-save must not wedge every later save."""
        import os
        import subprocess
        import sys
        import time

        import repro.cache.locks as locks_mod

        store_path = tmp_path / "store.json"
        lock_path = tmp_path / "store.json.lock"
        src_dir = os.path.dirname(os.path.dirname(os.path.dirname(locks_mod.__file__)))
        # The victim acquires the store's save lock exactly as
        # SynthesisCache.save does, announces it, then hangs as if it
        # died between acquire and release.
        victim = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; sys.path.insert(0, sys.argv[1])\n"
                "from repro.cache.locks import FileLock\n"
                "lock = FileLock(sys.argv[2]); lock.acquire()\n"
                "print('HOLDING', flush=True)\n"
                "import time; time.sleep(60)\n",
                src_dir,
                str(lock_path),
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert victim.stdout.readline().strip() == "HOLDING"
            victim.kill()
            victim.wait()
            assert lock_path.exists()  # the crash left the lock behind

            cache = SynthesisCache(store_path, autosave=False)
            cache.record_failure("fp-after-crash", "no strategy verified")
            started = time.monotonic()
            cache.save()  # must reclaim the dead holder's lock, not block
            assert time.monotonic() - started < 5.0
            assert not lock_path.exists()
            reread = SynthesisCache(store_path)
            assert reread.get("fp-after-crash") is not None
        finally:
            if victim.poll() is None:
                victim.kill()
