"""Numpy reference executor for the Halide-like DSL.

``realize`` evaluates a :class:`~repro.halide.lang.Func` over a
rectangular output domain given concrete numpy input buffers.  The
evaluation is vectorised: index expressions are evaluated to integer
coordinate arrays over the whole domain, and buffer reads become numpy
fancy-indexing.  The executor is the correctness backstop of the
pipeline — generated Halide code is checked against the original
Fortran kernel interpreted by :mod:`repro.semantics.exec` — and is also
used by the examples.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.halide.lang import (
    BinOp,
    Call,
    Const,
    Expr,
    Func,
    FuncRef,
    HalideError,
    ImageParam,
    ImageRef,
    Param,
    Var,
)

Domain = Sequence[Tuple[int, int]]  # inclusive (lower, upper) per dimension


_NUMPY_FUNCS = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "abs": np.abs,
    "min": np.minimum,
    "max": np.maximum,
    "pow": np.power,
    "mod": np.mod,
}


class _Realizer:
    def __init__(
        self,
        func: Func,
        domain: Domain,
        inputs: Mapping[str, np.ndarray],
        input_origins: Mapping[str, Tuple[int, ...]],
        params: Mapping[str, float],
    ):
        self.func = func
        self.domain = list(domain)
        self.inputs = inputs
        self.input_origins = input_origins
        self.params = params
        if func.definition is None:
            raise HalideError(f"Func {func.name!r} has no definition")
        if len(domain) != func.dimensions:
            raise HalideError(
                f"domain rank {len(domain)} does not match Func rank {func.dimensions}"
            )
        shape = tuple(hi - lo + 1 for lo, hi in domain)
        grids = np.meshgrid(
            *[np.arange(lo, hi + 1) for lo, hi in domain], indexing="ij"
        )
        self.coords: Dict[str, np.ndarray] = {
            var.name: grid for var, grid in zip(func.vars, grids)
        }
        self.shape = shape

    def evaluate(self, expr: Expr) -> np.ndarray:
        if isinstance(expr, Const):
            return np.full(self.shape, float(expr.value))
        if isinstance(expr, Var):
            if expr.name not in self.coords:
                raise HalideError(f"free variable {expr.name!r} in definition")
            return self.coords[expr.name].astype(float)
        if isinstance(expr, Param):
            if expr.name not in self.params:
                raise HalideError(f"no value supplied for scalar param {expr.name!r}")
            return np.full(self.shape, float(self.params[expr.name]))
        if isinstance(expr, BinOp):
            left = self.evaluate(expr.left)
            right = self.evaluate(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left / right
            raise HalideError(f"unknown operator {expr.op!r}")
        if isinstance(expr, Call):
            fn = _NUMPY_FUNCS.get(expr.func)
            if fn is None:
                raise HalideError(f"no numpy model for function {expr.func!r}")
            args = [self.evaluate(a) for a in expr.args]
            return fn(*args)
        if isinstance(expr, ImageRef):
            return self._load(expr)
        if isinstance(expr, FuncRef):
            raise HalideError("multi-stage pipelines must be realized stage by stage")
        raise HalideError(f"cannot evaluate expression {expr!r}")

    def _index_array(self, expr: Expr) -> np.ndarray:
        """Evaluate an index expression to an integer coordinate array."""
        if isinstance(expr, Const):
            return np.full(self.shape, int(expr.value), dtype=np.int64)
        if isinstance(expr, Var):
            return self.coords[expr.name].astype(np.int64)
        if isinstance(expr, Param):
            return np.full(self.shape, int(self.params[expr.name]), dtype=np.int64)
        if isinstance(expr, BinOp):
            left = self._index_array(expr.left)
            right = self._index_array(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left // right
            raise HalideError(f"unknown operator {expr.op!r} in index")
        if isinstance(expr, Call) and expr.func in {"min", "max"}:
            left = self._index_array(expr.args[0])
            right = self._index_array(expr.args[1])
            return np.minimum(left, right) if expr.func == "min" else np.maximum(left, right)
        raise HalideError(f"unsupported index expression {expr!r}")

    def _load(self, ref: ImageRef) -> np.ndarray:
        name = ref.image.name
        if name not in self.inputs:
            raise HalideError(f"no buffer supplied for input {name!r}")
        buffer = self.inputs[name]
        if buffer.ndim != ref.image.dimensions:
            raise HalideError(
                f"buffer for {name!r} has rank {buffer.ndim}, expected {ref.image.dimensions}"
            )
        origin = self.input_origins.get(name, (0,) * buffer.ndim)
        index_arrays = []
        for dim, index_expr in enumerate(ref.indices):
            coords = self._index_array(index_expr) - origin[dim]
            coords = np.clip(coords, 0, buffer.shape[dim] - 1)
            index_arrays.append(coords)
        return buffer[tuple(index_arrays)].astype(float)


def realize(
    func: Func,
    domain: Domain,
    inputs: Mapping[str, np.ndarray],
    input_origins: Mapping[str, Tuple[int, ...]] = None,
    params: Mapping[str, float] = None,
) -> np.ndarray:
    """Evaluate ``func`` over ``domain`` and return the output buffer.

    ``domain`` is a list of inclusive (lower, upper) pairs in *logical*
    coordinates; ``input_origins`` gives, per input buffer, the logical
    coordinate of element ``[0, 0, ...]`` (Fortran arrays with
    non-unit lower bounds).  Reads outside a buffer are clamped, which
    never matters for verified summaries (their index ranges match the
    modified region) but keeps the executor total.
    """
    realizer = _Realizer(func, domain, inputs, input_origins or {}, params or {})
    return realizer.evaluate(func.definition)
