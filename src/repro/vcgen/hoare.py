"""Hoare-style verification conditions for candidate stencil kernels.

Following §2.1 and Figure 2 of the paper, a kernel with unknown
postcondition ``post`` and one unknown invariant per loop gives rise to
a conjunction of clauses:

* **initialization** — entering a loop (after executing any straight-line
  code before it and initialising the counter) establishes its
  invariant;
* **preservation** — assuming a loop's invariant and its condition,
  executing the body once and incrementing the counter re-establishes
  the invariant; when the body itself contains loops, preservation is
  discharged through the inner loops' initialization and exit clauses;
* **loop exit** — assuming a loop's invariant and the negated loop
  condition, the code following the loop (possibly entering further
  loops) establishes the enclosing obligation, ultimately ``post``.

Clauses are evaluated on *concrete* program states: an implication whose
premises fail on the state holds vacuously.  The same clause objects are
used by CEGIS (checked against a growing set of concrete states) and by
the full verifier (checked against exhaustive/symbolic state families).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir import nodes as ir
from repro.predicates.evaluate import (
    PredicateEvalError,
    evaluate_invariant,
    evaluate_postcondition,
)
from repro.predicates.language import Invariant, Postcondition
from repro.semantics.evalexpr import EvalError, compare_values, eval_ir_condition, eval_ir_expr
from repro.semantics.exec import ExecutionError, execute_statement
from repro.semantics.state import State, require_int


@dataclass
class CandidateSummary:
    """A candidate solution: one postcondition plus one invariant per loop.

    ``strided_exact`` records that the invariants were built with the
    exact completed-region bounds for strided loops (see
    :mod:`repro.synthesis.invariants`).  Such invariants are implicitly
    strengthened with the counter-alignment conjunct ``(counter -
    lower) mod step == 0`` for every live loop: the clause premises
    enforce it (see :meth:`VCClause._premises_hold`), matching what the
    inductive prover assumes.  For step-1 loops the conjunct is a
    tautology, so candidates built without ``strided_exact`` — the
    prover-off configuration — behave exactly as before.
    """

    post: Postcondition
    invariants: Dict[str, Invariant] = field(default_factory=dict)
    strided_exact: bool = False

    def invariant_for(self, loop_id: str) -> Invariant:
        if loop_id not in self.invariants:
            raise KeyError(f"candidate has no invariant for loop {loop_id!r}")
        return self.invariants[loop_id]


@dataclass(frozen=True)
class ExitTarget:
    """What a clause must establish after running its straight-line prefix."""

    kind: str  # "post" or "inv"
    loop_id: Optional[str] = None
    counter_update: Optional[Tuple[str, int]] = None  # (counter, step) applied before the check

    def describe(self) -> str:
        if self.kind == "post":
            return "post"
        update = ""
        if self.counter_update is not None:
            counter, step = self.counter_update
            update = f" [{counter} += {step}]"
        return f"inv({self.loop_id}){update}"


@dataclass(frozen=True)
class Assumption:
    """One premise of a clause, evaluated on the concrete state."""

    kind: str  # "pre", "inv", "loop_cond", "loop_exit"
    loop_id: Optional[str] = None
    loop: Optional[ir.Loop] = None

    def describe(self) -> str:
        if self.kind == "pre":
            return "pre"
        if self.kind == "inv":
            return f"inv({self.loop_id})"
        assert self.loop is not None
        rel = "<=" if self.kind == "loop_cond" else ">"
        return f"{self.loop.counter} {rel} {self.loop.upper!r}"


@dataclass
class VCClause:
    """One implication of the verification condition.

    ``aligned_loops`` lists the loops *live* at the clause's program
    point (the loops of its assumptions plus their ancestors); for
    ``strided_exact`` candidates their counters are additionally
    premised to be aligned (``(counter - lower) mod step == 0``), which
    is the strengthened-invariant reading the inductive prover uses.
    """

    name: str
    assumptions: Tuple[Assumption, ...]
    counter_init: Optional[Tuple[str, ir.ValueExpr]]
    prefix: Tuple[ir.Stmt, ...]
    target: ExitTarget
    kernel: ir.Kernel
    aligned_loops: Tuple[ir.Loop, ...] = ()

    def describe(self) -> str:
        premises = " and ".join(a.describe() for a in self.assumptions) or "true"
        return f"{self.name}: {premises} -> {self.target.describe()}"

    # -- evaluation ---------------------------------------------------------
    def holds(self, state: State, candidate: CandidateSummary) -> bool:
        """Check the clause on one concrete state.

        Returns ``True`` when the implication holds (including
        vacuously).  Raises :class:`PredicateEvalError` when the
        candidate cannot even be evaluated on the state — the CEGIS
        driver treats that as a failed candidate.
        """
        work = state.copy()
        if not self._premises_hold(work, candidate):
            return True
        for stmt in self.prefix:
            execute_statement(stmt, work)
        if self.counter_init is not None:
            counter, lower = self.counter_init
            work.set_scalar(counter, require_int(eval_ir_expr(lower, work), context="loop lower bound"))
        if self.target.counter_update is not None:
            counter, step = self.target.counter_update
            work.set_scalar(counter, require_int(work.scalar(counter)) + step)
        return self._target_holds(work, candidate)

    def _premises_hold(self, state: State, candidate: CandidateSummary) -> bool:
        if candidate.strided_exact and not self._counters_aligned(state):
            return False
        for assumption in self.assumptions:
            if assumption.kind == "pre":
                for pre in self.kernel.assumptions:
                    try:
                        if not eval_ir_condition(pre, state):
                            return False
                    except EvalError:
                        return False
                if not _bounds_non_degenerate(self.kernel, state):
                    return False
            elif assumption.kind == "inv":
                invariant = candidate.invariant_for(assumption.loop_id or "")
                try:
                    if not evaluate_invariant(invariant, state):
                        return False
                except PredicateEvalError:
                    return False
            elif assumption.kind in {"loop_cond", "loop_exit"}:
                loop = assumption.loop
                assert loop is not None
                try:
                    counter = require_int(state.scalar(loop.counter))
                    upper = require_int(eval_ir_expr(loop.upper, state))
                except (KeyError, EvalError, TypeError):
                    return False
                in_range = counter <= upper
                if assumption.kind == "loop_cond" and not in_range:
                    return False
                if assumption.kind == "loop_exit" and in_range:
                    return False
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown assumption kind {assumption.kind!r}")
        return True

    def _counters_aligned(self, state: State) -> bool:
        """Alignment premise: every live strided counter sits on its grid.

        Execution only ever gives a counter values ``lower + k*step``
        (including the exit value), so this premise is true at every
        state control actually reaches; it exists to discard the
        *unreachable* misaligned states on which the exact strided
        invariants are vacuously weak.  Step-1 loops are trivially
        aligned, hence the check is a no-op for non-strided kernels.
        """
        for loop in self.aligned_loops:
            if loop.step in (1, -1):
                continue
            try:
                counter = require_int(state.scalar(loop.counter))
                lower = require_int(eval_ir_expr(loop.lower, state))
            except (KeyError, EvalError, TypeError):
                return False
            if (counter - lower) % loop.step != 0:
                return False
        return True

    def _target_holds(self, state: State, candidate: CandidateSummary) -> bool:
        if self.target.kind == "post":
            return evaluate_postcondition(candidate.post, state)
        invariant = candidate.invariant_for(self.target.loop_id or "")
        return evaluate_invariant(invariant, state)


def _bounds_non_degenerate(kernel: ir.Kernel, state: State) -> bool:
    """Implicit precondition: loops whose bounds are counter-independent execute.

    The paper's preconditions assume non-trivial grids; without this,
    degenerate states (e.g. ``jmin > jmax + 1``) would falsify any
    invariant of the paper's shape at initialization.  Bounds that
    depend on loop counters (tiled inner loops) are skipped since they
    cannot be evaluated before the enclosing loop runs.
    """
    from repro.ir.analysis import collect_loops, loop_counters

    counters = set(loop_counters(kernel))
    for loop in collect_loops(kernel.body):
        mentioned = {
            node.name
            for bound in (loop.lower, loop.upper)
            for node in bound.walk()
            if isinstance(node, ir.VarRef)
        }
        if mentioned & counters:
            continue
        try:
            lower = require_int(eval_ir_expr(loop.lower, state))
            upper = require_int(eval_ir_expr(loop.upper, state))
        except (EvalError, TypeError, KeyError):
            return False
        if lower > upper:
            return False
    return True


@dataclass
class LoopInfo:
    """Metadata about one loop the synthesizer needs to build invariant templates."""

    loop_id: str
    loop: ir.Loop
    depth: int
    enclosing: Tuple[str, ...]  # loop_ids of enclosing loops, outermost first


@dataclass
class VCProblem:
    """The full verification condition for one kernel."""

    kernel: ir.Kernel
    loops: List[LoopInfo]
    clauses: List[VCClause]

    def loop_ids(self) -> List[str]:
        return [info.loop_id for info in self.loops]

    def loop_info(self, loop_id: str) -> LoopInfo:
        for info in self.loops:
            if info.loop_id == loop_id:
                return info
        raise KeyError(f"unknown loop id {loop_id!r}")

    def check(self, state: State, candidate: CandidateSummary) -> Optional[str]:
        """Check every clause on one state; return the first failing clause name."""
        for clause in self.clauses:
            try:
                if not clause.holds(state, candidate):
                    return clause.name
            except (PredicateEvalError, ExecutionError, EvalError, TypeError) as exc:
                return f"{clause.name} (evaluation error: {exc})"
        return None


class _VCBuilder:
    def __init__(self, kernel: ir.Kernel):
        self.kernel = kernel
        self.loops: List[LoopInfo] = []
        self.clauses: List[VCClause] = []
        self._counter_counts: Dict[str, int] = {}

    def build(self) -> VCProblem:
        statements = list(self.kernel.body.statements)
        entry = (Assumption("pre"),)
        self._process_block(statements, entry, ExitTarget("post"), path=(), enclosing=())
        return VCProblem(kernel=self.kernel, loops=self.loops, clauses=self.clauses)

    # -- helpers -----------------------------------------------------------
    def _fresh_loop_id(self, counter: str) -> str:
        count = self._counter_counts.get(counter, 0)
        self._counter_counts[counter] = count + 1
        return counter if count == 0 else f"{counter}#{count}"

    def _aligned_loops(self, assumptions: Tuple[Assumption, ...]) -> Tuple[ir.Loop, ...]:
        """The clause's live loops (assumption loops plus ancestors)."""
        by_id = {info.loop_id: info for info in self.loops}
        aligned: List[ir.Loop] = []
        for assumption in assumptions:
            loop_id = assumption.loop_id
            info = by_id.get(loop_id or "")
            if info is None:
                continue
            for live_id in info.enclosing + (info.loop_id,):
                loop = by_id[live_id].loop
                if not any(existing is loop for existing in aligned):
                    aligned.append(loop)
        return tuple(aligned)

    def _process_block(
        self,
        statements: Sequence[ir.Stmt],
        entry: Tuple[Assumption, ...],
        target: ExitTarget,
        path: Tuple[str, ...],
        enclosing: Tuple[str, ...],
    ) -> None:
        prefix: List[ir.Stmt] = []
        index = 0
        while index < len(statements) and not isinstance(statements[index], ir.Loop):
            prefix.append(statements[index])
            index += 1

        if index == len(statements):
            # No loop: one straight-line clause from entry to target.
            self.clauses.append(
                VCClause(
                    name=".".join(path + ("straightline",)) if path else "straightline",
                    assumptions=entry,
                    counter_init=None,
                    prefix=tuple(prefix),
                    target=target,
                    kernel=self.kernel,
                    aligned_loops=self._aligned_loops(entry),
                )
            )
            return

        loop = statements[index]
        assert isinstance(loop, ir.Loop)
        rest = list(statements[index + 1:])
        loop_id = self._fresh_loop_id(loop.counter)
        self.loops.append(
            LoopInfo(loop_id=loop_id, loop=loop, depth=len(enclosing), enclosing=enclosing)
        )

        # Initialization: entry assumptions, run prefix, set counter to lower,
        # establish the loop invariant.
        self.clauses.append(
            VCClause(
                name=".".join(path + (loop_id, "init")),
                assumptions=entry,
                counter_init=(loop.counter, loop.lower),
                prefix=tuple(prefix),
                target=ExitTarget("inv", loop_id),
                kernel=self.kernel,
                aligned_loops=self._aligned_loops(entry),
            )
        )

        # Preservation: the loop body, assuming the invariant and the loop
        # condition, must re-establish the invariant with the counter advanced.
        body_entry = (
            Assumption("inv", loop_id=loop_id),
            Assumption("loop_cond", loop_id=loop_id, loop=loop),
        )
        self._process_block(
            list(loop.body.statements),
            body_entry,
            ExitTarget("inv", loop_id, counter_update=(loop.counter, loop.step)),
            path=path + (loop_id,),
            enclosing=enclosing + (loop_id,),
        )

        # Exit: the invariant plus the negated condition flows into the rest
        # of the block (which may itself contain further loops) and must
        # ultimately establish the original target.
        exit_entry = (
            Assumption("inv", loop_id=loop_id),
            Assumption("loop_exit", loop_id=loop_id, loop=loop),
        )
        self._process_block(
            rest,
            exit_entry,
            target,
            path=path + (loop_id, "after"),
            enclosing=enclosing,
        )


def generate_vc(kernel: ir.Kernel) -> VCProblem:
    """Generate the verification condition (Figure 2) for a kernel."""
    return _VCBuilder(kernel).build()
