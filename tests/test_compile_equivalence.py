"""Compiled-vs-interpreted equivalence for the closure-compilation layer.

The compiled evaluators (:mod:`repro.compile`) must be *bit-identical*
to the tree-walking interpreters: same values (including ``Fraction``
vs ``float`` behaviour and GF(7) field elements), same exception types
and messages (division by zero, unbound scalars, symbolic indices), on
both backends (per-node closures and ``compile()``-ed source).  The
properties are checked on random expressions, on every suite kernel's
executable body, and end-to-end through ``synthesize_kernel``.
"""

from __future__ import annotations

import pickle
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.fingerprint import CODE_VERSION
from repro.compile import (
    CompileOptions,
    CompiledCollector,
    CompiledVC,
    compile_ir_expr,
    compile_stmt,
    compile_sym_expr,
)
from repro.frontend import identify_candidates, parse_source
from repro.frontend.lowering import lower_candidate
from repro.ir import nodes as ir
from repro.semantics.evalexpr import EvalError, eval_ir_expr, eval_sym_expr
from repro.semantics.exec import execute_statement
from repro.semantics.numeric import coerce_number, compare_values
from repro.semantics.state import ArrayValue, State, constant_array, function_array
from repro.suites.registry import all_cases
from repro.symbolic.expr import (
    Add,
    ArrayCell,
    Call,
    Const,
    Div,
    Mul,
    Neg,
    Sub,
    Sym,
    cell,
    sym,
)
from repro.synthesis.cegis import synthesis_config, synthesize_kernel
from repro.synthesis.floatmodel import Mod7
from repro.vcgen.hoare import generate_vc

INTERPRETED = CompileOptions(enabled=False)
CLOSURES = CompileOptions(codegen=False)
CODEGEN = CompileOptions(codegen=True)
NO_FOLD = CompileOptions(fold_constants=False, specialize_indices=False)

BACKENDS = [CLOSURES, CODEGEN, NO_FOLD]


def kernel_from_source(source: str):
    return lower_candidate(identify_candidates(parse_source(source)).candidates[0])


RUNNING_EXAMPLE = """
procedure sten(imin,imax,jmin,jmax,a,b)
real (kind=8), dimension(imin:imax,jmin:jmax) :: a
real (kind=8), dimension(imin:imax,jmin:jmax) :: b
do j=jmin,jmax
t = b(imin, j)
do i=imin+1,imax
q = b(i,j)
a(i,j) = q + t
t = q
enddo
enddo
end procedure
"""


def outcome(fn):
    """Result or (exception type, message) — the unit of equivalence."""
    try:
        return ("ok", fn())
    except Exception as exc:  # noqa: BLE001 - parity includes the type
        return ("err", type(exc).__name__, str(exc))


# ---------------------------------------------------------------------------
# Random symbolic expressions
# ---------------------------------------------------------------------------

SYM_NAMES = ("i", "j", "n", "w", "missing")
BOUND_NAMES = ("q1", "q2")


def _leaves():
    consts = st.one_of(
        st.integers(-6, 6).map(lambda n: Const(Fraction(n))),
        st.fractions(min_value=-4, max_value=4, max_denominator=6).map(Const),
        st.floats(-8, 8, allow_nan=False, allow_infinity=False, width=32).map(
            lambda f: Const(float(f))
        ),
    )
    syms = st.sampled_from(SYM_NAMES + BOUND_NAMES).map(Sym)
    return st.one_of(consts, syms)


def _compose(children):
    index = st.integers(-2, 3).map(lambda n: Const(Fraction(n)))
    indexed = st.one_of(index, st.sampled_from(BOUND_NAMES).map(Sym))
    return st.one_of(
        st.tuples(children, children).map(lambda t: Add(*t)),
        st.tuples(children, children).map(lambda t: Sub(*t)),
        st.tuples(children, children).map(lambda t: Mul(*t)),
        st.tuples(children, children).map(lambda t: Div(*t)),
        children.map(Neg),
        st.tuples(st.sampled_from(["a", "b"]), indexed, indexed).map(
            lambda t: ArrayCell(t[0], (t[1], t[2]))
        ),
        st.tuples(st.sampled_from(["sqrt", "abs", "min", "nosuchfn"]), children).map(
            lambda t: Call(t[0], (t[1], t[1]) if t[0] == "min" else (t[1],))
        ),
    )


sym_exprs = st.recursive(_leaves(), _compose, max_leaves=12)


def _make_state() -> State:
    state = State(
        scalars={
            "i": 2,
            "j": 3,
            "n": Fraction(5, 2),
            "w": Mod7(3),
        }
    )
    state.arrays["a"] = function_array("a", lambda idx: Mod7(sum(idx) % 7))
    state.arrays["b"] = constant_array("b", Fraction(1, 3))
    return state


BINDINGS = {"q1": 1, "q2": -2}


@settings(max_examples=300, deadline=None)
@given(expr=sym_exprs)
def test_sym_expr_backends_match_interpreter(expr):
    state = _make_state()
    reference = outcome(lambda: eval_sym_expr(expr, state, BINDINGS))
    for options in BACKENDS:
        fn = compile_sym_expr(expr, options)
        assert outcome(lambda: fn(state, BINDINGS)) == reference


@settings(max_examples=150, deadline=None)
@given(expr=sym_exprs)
def test_sym_expr_matches_on_symbolic_state(expr):
    # Fully symbolic arrays/scalars: results are hash-consed Expr trees,
    # so equality below is structural equality of the built expressions.
    state = State(scalars={"i": 2, "j": 0, "n": sym("n"), "w": sym("w")})
    reference = outcome(lambda: eval_sym_expr(expr, state, BINDINGS))
    for options in BACKENDS:
        fn = compile_sym_expr(expr, options)
        assert outcome(lambda: fn(state, BINDINGS)) == reference


class TestSymEdgeCases:
    def test_division_by_zero_parity(self):
        expr = Div(Sym("i"), Sub(Sym("j"), Sym("j")))
        state = State(scalars={"i": 4, "j": 7})
        reference = outcome(lambda: eval_sym_expr(expr, state, {}))
        assert reference[0] == "err" and reference[1] == "ZeroDivisionError"
        for options in BACKENDS:
            fn = compile_sym_expr(expr, options)
            assert outcome(lambda: fn(state, {})) == reference

    def test_unbound_scalar_message_parity(self):
        expr = Add(Sym("nope"), Const(Fraction(1)))
        state = State()
        reference = outcome(lambda: eval_sym_expr(expr, state, {}))
        assert reference[0] == "err" and reference[1] == "EvalError"
        for options in BACKENDS:
            fn = compile_sym_expr(expr, options)
            assert outcome(lambda: fn(state, {})) == reference

    def test_fraction_const_normalises_to_int(self):
        fn = compile_sym_expr(Const(Fraction(4)), CODEGEN)
        value = fn(State(), {})
        assert value == 4 and type(value) is int

    def test_float_vs_fraction_division(self):
        state = State(scalars={"x": 1, "y": 3})
        exact = Div(Sym("x"), Sym("y"))
        for options in BACKENDS:
            assert compile_sym_expr(exact, options)(state, {}) == Fraction(1, 3)
        state_float = State(scalars={"x": 1.0, "y": 3})
        interp = eval_sym_expr(exact, state_float, {})
        for options in BACKENDS:
            value = compile_sym_expr(exact, options)(state_float, {})
            assert value == interp and type(value) is float

    def test_symbolic_index_error_parity(self):
        expr = ArrayCell("a", (Sym("k"),))
        state = State(scalars={"k": sym("k")})
        reference = outcome(lambda: eval_sym_expr(expr, state, {}))
        assert reference[0] == "err" and reference[1] == "TypeError"
        for options in BACKENDS:
            fn = compile_sym_expr(expr, options)
            assert outcome(lambda: fn(state, {})) == reference


# ---------------------------------------------------------------------------
# IR expressions and statements
# ---------------------------------------------------------------------------

def _random_ir_expr(rng: random.Random, depth: int = 3) -> ir.ValueExpr:
    if depth == 0 or rng.random() < 0.3:
        choice = rng.randrange(4)
        if choice == 0:
            return ir.IntConst(rng.randint(-5, 5))
        if choice == 1:
            return ir.RealConst(round(rng.uniform(-3, 3), 2))
        if choice == 2:
            return ir.VarRef(rng.choice(["i", "j", "n", "w"]))
        return ir.ArrayLoad("b", (ir.VarRef("i"),))
    choice = rng.randrange(6)
    if choice < 4:
        op = "+-*/"[choice]
        return ir.BinOp(op, _random_ir_expr(rng, depth - 1), _random_ir_expr(rng, depth - 1))
    if choice == 4:
        return ir.UnaryOp("-", _random_ir_expr(rng, depth - 1))
    return ir.FuncCall("abs", (_random_ir_expr(rng, depth - 1),))


def test_ir_expr_backends_match_interpreter():
    rng = random.Random(7)
    for _ in range(300):
        expr = _random_ir_expr(rng)
        state = State(scalars={"i": 1, "j": -2, "n": Fraction(3, 2), "w": 0.75})
        state.arrays["b"] = function_array("b", lambda idx: Fraction(idx[0] + 2, 3))
        reference = outcome(lambda: eval_ir_expr(expr, state))
        for options in BACKENDS:
            fn = compile_ir_expr(expr, options)
            assert outcome(lambda: fn(state)) == reference


def _states_equal(left: State, right: State) -> bool:
    if left.scalars != right.scalars:
        return False
    if set(left.arrays) != set(right.arrays):
        return False
    for name in left.arrays:
        if left.arrays[name].cells != right.arrays[name].cells:
            return False
    return True


def _concrete_state(kernel, seed: int) -> State:
    rng = random.Random(seed)
    state = State()
    for decl in kernel.scalars:
        if decl.scalar_type == "integer":
            state.scalars[decl.name] = rng.randint(1, 4)
        else:
            state.scalars[decl.name] = Fraction(rng.randint(-6, 6), rng.choice([1, 2, 3]))
    for decl in kernel.arrays:
        state.arrays[decl.name] = function_array(
            decl.name, lambda idx: Fraction((sum(idx) * 7 + 3) % 11, 2)
        )
    return state


@pytest.mark.parametrize("options", BACKENDS, ids=["closures", "codegen", "nofold"])
def test_every_suite_kernel_executes_identically(options):
    checked = 0
    for case in all_cases():
        report = identify_candidates(parse_source(case.source))
        if not report.candidates:
            continue
        try:
            kernel = lower_candidate(report.candidates[0])
        except Exception:
            continue
        interp_state = _concrete_state(kernel, seed=11)
        compiled_state = _concrete_state(kernel, seed=11)
        reference = outcome(lambda: execute_statement(kernel.body, interp_state))
        fn = compile_stmt(kernel.body, options)
        result = outcome(lambda: fn(compiled_state))
        assert result[0] == reference[0], f"{case.name}: {result} vs {reference}"
        if reference[0] == "err":
            assert result[1:] == reference[1:], case.name
        else:
            assert _states_equal(interp_state, compiled_state), case.name
        checked += 1
    assert checked >= 50  # the sweep must actually cover the registry


def test_collector_matches_interpreted_collector():
    from repro.verification.bounded import _ReachableStateCollector

    kernel = kernel_from_source(RUNNING_EXAMPLE)
    interp_states = _ReachableStateCollector(kernel).run(_concrete_state(kernel, 3))
    compiled_states = CompiledCollector(kernel, CODEGEN).collect(_concrete_state(kernel, 3))
    assert len(interp_states) == len(compiled_states)
    for left, right in zip(interp_states, compiled_states):
        assert _states_equal(left, right)


# ---------------------------------------------------------------------------
# Whole-pipeline equivalence
# ---------------------------------------------------------------------------

class TestSynthesisEquivalence:
    def test_running_example_identical_result(self):
        from repro.cache.serialize import result_to_payload

        compiled = synthesize_kernel(kernel_from_source(RUNNING_EXAMPLE), seed=1)
        interpreted = synthesize_kernel(
            kernel_from_source(RUNNING_EXAMPLE), seed=1, compile_options=INTERPRETED
        )
        left = result_to_payload(compiled)
        right = result_to_payload(interpreted)
        left.pop("synthesis_time"), right.pop("synthesis_time")
        assert left == right

    def test_compiled_vc_check_matches_interpreted(self):
        kernel = kernel_from_source(RUNNING_EXAMPLE)
        result = synthesize_kernel(kernel, seed=1)
        vc = generate_vc(kernel)
        compiled_vc = CompiledVC(vc, CODEGEN)
        for seed in range(6):
            state = _concrete_state(kernel, seed)
            assert compiled_vc.check(state, result.candidate) == vc.check(
                state, result.candidate
            )


# ---------------------------------------------------------------------------
# Cache fingerprints and options plumbing
# ---------------------------------------------------------------------------

class TestFingerprints:
    def test_code_version_bumped_for_compile_layer(self):
        # stng-cache-2 added the compile section; stng-cache-3 invalidated
        # entries verified under flooring (pre-truncation) MOD semantics;
        # stng-cache-4 invalidated entries recorded before the exact
        # trip-count enumeration and the Tier-3 inductive prover.
        assert CODE_VERSION == "stng-cache-4"

    def test_config_contains_compile_options(self):
        config = synthesis_config(
            trials=2,
            seed=0,
            max_candidates=10,
            quick_samples=2,
            verifier_environments=1,
            strategies=["dense"],
            compile_options=CompileOptions(),
        )
        assert config["compile"]["enabled"] is True

    def test_toggling_compilation_changes_fingerprint(self):
        from repro.cache.fingerprint import fingerprint_synthesis

        kernel = kernel_from_source(RUNNING_EXAMPLE)
        base = dict(trials=2, seed=0, max_candidates=10, quick_samples=2,
                    verifier_environments=1, strategies=["dense"])
        on = fingerprint_synthesis(
            kernel, synthesis_config(**base, compile_options=CompileOptions())
        )
        off = fingerprint_synthesis(
            kernel, synthesis_config(**base, compile_options=INTERPRETED)
        )
        assert on != off

    def test_pipeline_options_coerce_mapping(self):
        from dataclasses import asdict

        from repro.pipeline import PipelineOptions

        options = PipelineOptions(compile_options=CompileOptions(enabled=False))
        rebuilt = PipelineOptions(**asdict(options))
        assert rebuilt.compile_options == CompileOptions(enabled=False)
        assert isinstance(rebuilt.compile_options, CompileOptions)


# ---------------------------------------------------------------------------
# Hash-consing
# ---------------------------------------------------------------------------

class TestHashConsing:
    def test_structurally_equal_nodes_are_identical(self):
        left = cell("b", sym("i") - 1, "j") + cell("b", sym("i"), "j")
        right = cell("b", sym("i") - 1, "j") + cell("b", sym("i"), "j")
        assert left is right

    def test_pickle_reinterns(self):
        expr = cell("a", sym("i") + 1) * Const(Fraction(3, 2))
        clone = pickle.loads(pickle.dumps(expr))
        assert clone is expr

    def test_numeric_types_stay_distinct(self):
        exact = Const(Fraction(2))
        inexact = Const(2.0)
        assert exact == inexact  # structural equality is unchanged
        assert exact is not inexact
        assert repr(exact) == "2" and repr(inexact) == "2.0"

    def test_signed_zero_consts_stay_distinct(self):
        assert Const(0.0) is not Const(-0.0)

    def test_cached_walk_and_symbols(self):
        expr = (sym("i") + sym("j")) * cell("b", sym("i"))
        assert list(expr.walk()) == list(expr.walk())
        assert expr.symbols() == frozenset({"i", "j"})
        assert expr.arrays() == frozenset({"b"})
        assert expr.size() == 6

    def test_simplify_memo_does_not_conflate_numeric_twins(self):
        # Const(0.1) and Const(Fraction(0.1)) compare equal structurally
        # but canonicalise differently (limit_denominator vs exact); the
        # memo must be identity-keyed so warm order cannot leak one
        # twin's canonical form to the other.
        from repro.symbolic.simplify import simplify

        inexact = sym("x") + Const(0.1)
        exact = sym("x") + Const(Fraction(0.1))
        assert inexact == exact and inexact is not exact
        warm_first = simplify(inexact)
        assert simplify(exact) != warm_first

    def test_shared_numeric_coercion(self):
        # The satellite refactor: one coercion helper for both paths.
        assert coerce_number(Const(Fraction(3)) + Const(Fraction(4))) == 7
        assert compare_values("<", Fraction(1, 2), 0.75)
        with pytest.raises(EvalError):
            coerce_number(sym("x") + 1)
