"""The sharded synthesis store: appends, compaction, migration, contention.

The claims under test, in roughly escalating order of paranoia:

* shard bucketing is deterministic and filesystem-safe for any key;
* append → load round-trips, later records win, saves append rather
  than rewrite, and the ``SynthesisCache`` suffix rule picks the right
  backend;
* compaction drops dead weight (rewrites, stale versions, damage)
  without losing a live entry;
* opening a legacy single-JSON store through the sharded backend
  migrates it atomically and idempotently, preserving the original;
* a writer SIGKILLed mid-append (faultinject) leaves the store
  *loadable* and its shard lock reclaimable;
* many concurrent writer processes lose zero entries while compaction
  runs under contention;
* lift reports served from a sharded store are byte-identical
  (``report_signature``) to ones served from the legacy single file.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.cache import (
    CODE_VERSION,
    CacheIntegrityWarning,
    ShardedStore,
    StaleVersionWarning,
    SynthesisCache,
    shard_path,
    shard_prefix,
)
from repro.pipeline import PipelineOptions, report_signature
from repro.application.translate import translate_application
from repro.testing import write_spec
from repro.testing.faultinject import ENV_VAR


def _entry(message: str) -> dict:
    return {"status": "failure", "payload": {"message": message}, "kernel": "k", "created": 1.0}


def _fp(n: int) -> str:
    """Deterministic fingerprints spread over many shards."""
    return hashlib.sha256(str(n).encode("utf-8")).hexdigest()


class TestShardPrefix:
    def test_hex_keys_bucket_by_leading_chars(self):
        assert shard_prefix("abcdef", 2) == "ab"
        assert shard_prefix("ABCDEF", 2) == "ab"

    def test_unsafe_keys_bucket_by_digest(self):
        weird = shard_prefix("/../evil", 2)
        assert len(weird) == 2 and weird.isalnum()
        assert shard_prefix("/../evil", 2) == weird  # deterministic

    def test_short_keys_still_bucket(self):
        assert len(shard_prefix("a", 2)) == 2

    def test_shard_path_is_under_root(self, tmp_path):
        path = shard_path(tmp_path, "c0ffee")
        assert path == tmp_path / "c0"


class TestShardedStore:
    def test_append_load_roundtrip(self, tmp_path):
        store = ShardedStore(tmp_path / "store")
        leftover = store.append({_fp(1): _entry("one"), _fp(2): _entry("two")})
        assert leftover == {}
        assert store.load_all() == {_fp(1): _entry("one"), _fp(2): _entry("two")}

    def test_later_record_wins(self, tmp_path):
        store = ShardedStore(tmp_path / "store")
        store.append({_fp(1): _entry("old")})
        store.append({_fp(1): _entry("new")})
        assert store.load_all()[_fp(1)] == _entry("new")
        assert store.record_count() == 2  # append-only until compaction

    def test_damaged_line_skipped_with_warning(self, tmp_path):
        store = ShardedStore(tmp_path / "store")
        store.append({_fp(1): _entry("keep"), _fp(2): _entry("also")})
        shard = store.shard_file(_fp(1))
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"fp": "torn...\n')
        with pytest.warns(CacheIntegrityWarning, match="undecodable"):
            entries = store.load_all()
        assert entries[_fp(1)] == _entry("keep")
        assert entries[_fp(2)] == _entry("also")

    def test_stale_version_records_warn_and_drop(self, tmp_path):
        old = ShardedStore(tmp_path / "store", code_version=CODE_VERSION + "-old")
        old.append({_fp(1): _entry("stale")})
        new = ShardedStore(tmp_path / "store")
        new.append({_fp(2): _entry("live")})
        with pytest.warns(StaleVersionWarning, match="1 entries from"):
            entries = new.load_all()
        assert entries == {_fp(2): _entry("live")}

    def test_torn_tail_healed_before_next_append(self, tmp_path):
        first, second = "0" * 64, "0" * 63 + "1"  # same shard, distinct keys
        store = ShardedStore(tmp_path / "store")
        store.append({first: _entry("first")})
        shard = store.shard_file(first)
        # Simulate a writer killed mid-append: no trailing newline.
        with open(shard, "ab") as handle:
            handle.write(b'{"fp": "half')
        store.append({second: _entry("second")})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            entries = store.load_all()
        assert entries[first] == _entry("first")
        assert entries[second] == _entry("second")

    def test_compaction_drops_dead_records(self, tmp_path):
        store = ShardedStore(tmp_path / "store", compact_min_records=4, compact_factor=2)
        # Rewrite one fingerprint until the shard is mostly dead weight.
        for round_number in range(12):
            store.append({_fp(1): _entry(f"round {round_number}")})
        assert store.compactions >= 1
        assert store.load_all()[_fp(1)] == _entry("round 11")
        assert store.record_count() < 12

    def test_forced_compact_reports_counts(self, tmp_path):
        store = ShardedStore(tmp_path / "store")
        store.append({_fp(1): _entry("a")})
        store.append({_fp(1): _entry("b")})
        result = store.compact()
        assert result["records_before"] == 2
        assert result["records_after"] == 1
        assert store.load_all()[_fp(1)] == _entry("b")


class TestSuffixRule:
    def test_json_suffix_stays_legacy(self, tmp_path):
        cache = SynthesisCache(tmp_path / "store.json", autosave=False)
        assert not cache.sharded
        cache.record_failure(_fp(1), "m")
        cache.save()
        assert (tmp_path / "store.json").is_file()

    def test_directory_path_is_sharded(self, tmp_path):
        cache = SynthesisCache(tmp_path / "store", autosave=False)
        assert cache.sharded
        cache.record_failure(_fp(1), "m")
        cache.save()
        assert (tmp_path / "store").is_dir()
        assert list((tmp_path / "store").glob("shard-*.jsonl"))

    def test_explicit_override_wins(self, tmp_path):
        assert SynthesisCache(tmp_path / "s.json", sharded=True, autosave=False).sharded
        assert not SynthesisCache(tmp_path / "s", sharded=False, autosave=False).sharded

    def test_sharded_save_appends_only_new_entries(self, tmp_path):
        cache = SynthesisCache(tmp_path / "store", autosave=False)
        cache.record_failure(_fp(1), "one")
        cache.save()
        store = ShardedStore(tmp_path / "store")
        assert store.record_count() == 1
        cache.record_failure(_fp(2), "two")
        cache.save()
        assert store.record_count() == 2  # not rewritten, appended

    def test_two_instances_merge_through_shards(self, tmp_path):
        a = SynthesisCache(tmp_path / "store", autosave=False)
        b = SynthesisCache(tmp_path / "store", autosave=False)
        a.record_failure(_fp(1), "from a")
        b.record_failure(_fp(2), "from b")
        a.save()
        b.save()
        assert b.get(_fp(1)) is not None  # merge-save folded a's entry in
        reread = SynthesisCache(tmp_path / "store", autosave=False)
        assert len(reread) == 2


class TestMigration:
    def _legacy(self, path: Path, count: int = 3) -> None:
        entries = {_fp(n): _entry(f"legacy {n}") for n in range(1, count + 1)}
        path.write_text(
            json.dumps({"version": CODE_VERSION, "entries": entries}),
            encoding="utf-8",
        )

    def test_roundtrip_preserves_entries_and_original(self, tmp_path):
        legacy = tmp_path / "store"
        self._legacy(legacy)
        original_bytes = legacy.read_bytes()
        cache = SynthesisCache(legacy, autosave=False)
        assert cache.sharded
        assert len(cache) == 3
        assert cache.get(_fp(2)).failure_message == "legacy 2"
        migrated = Path(str(legacy) + ".migrated")
        assert migrated.read_bytes() == original_bytes
        assert legacy.is_dir()

    def test_migration_is_idempotent(self, tmp_path):
        legacy = tmp_path / "store"
        self._legacy(legacy)
        SynthesisCache(legacy, autosave=False)
        again = SynthesisCache(legacy, autosave=False)
        assert len(again) == 3
        # New entries keep flowing into the migrated store.
        again.record_failure(_fp(9), "post-migration")
        again.save()
        assert len(SynthesisCache(legacy, autosave=False)) == 4

    def test_version_skewed_legacy_migrates_to_empty(self, tmp_path):
        legacy = tmp_path / "store"
        entries = {_fp(1): _entry("stale")}
        legacy.write_text(
            json.dumps({"version": "older", "entries": entries}), encoding="utf-8"
        )
        with pytest.warns(StaleVersionWarning):
            cache = SynthesisCache(legacy, autosave=False)
        assert len(cache) == 0
        assert Path(str(legacy) + ".migrated").is_file()


WRITER_SCRIPT = r"""
import hashlib, sys
from repro.cache import ShardedStore
root, writer_id, rounds = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = ShardedStore(root, compact_min_records=8, compact_factor=2)
def entry(msg):
    return {"status": "failure", "payload": {"message": msg}, "kernel": "k", "created": 1.0}
for n in range(rounds):
    fp = hashlib.sha256(("w%d-%d" % (writer_id, n)).encode()).hexdigest()
    # One unique entry plus a contended rewrite of a shared fingerprint:
    # the rewrites are the dead weight that forces compaction under load.
    leftover = store.append({fp: entry("w%d n%d" % (writer_id, n))})
    assert not leftover, leftover
    store.append({"ff" * 32: entry("hot w%d n%d" % (writer_id, n))})
print(store.compactions)
"""


class TestConcurrentWriters:
    def test_multiprocess_stress_loses_nothing(self, tmp_path):
        root = tmp_path / "store"
        writers, rounds = 4, 24
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[1] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", WRITER_SCRIPT, str(root), str(writer_id), str(rounds)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for writer_id in range(writers)
        ]
        compactions = 0
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            compactions += int(out.strip() or 0)
        store = ShardedStore(root)
        entries = store.load_all()
        # Every unique entry from every writer survived...
        for writer_id in range(writers):
            for n in range(rounds):
                fp = hashlib.sha256(f"w{writer_id}-{n}".encode()).hexdigest()
                assert fp in entries, (writer_id, n)
        # ...the contended fingerprint holds one of the racers' values...
        assert entries["ff" * 32]["payload"]["message"].startswith("hot w")
        # ...and compaction really ran while writers contended.
        assert compactions > 0

    def test_kill_mid_append_leaves_store_loadable(self, tmp_path):
        root = tmp_path / "store"
        ShardedStore(root).append({_fp(1): _entry("survivor")})
        spec = write_spec(
            tmp_path / "faults.json",
            tmp_path / "faults-state",
            [{"site": "shard-append", "kind": "kill", "occurrences": [1]}],
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[1] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env[ENV_VAR] = str(spec)
        script = (
            "from repro.cache import ShardedStore\n"
            f"store = ShardedStore({str(root)!r})\n"
            "store.append({'d' * 64: {'status': 'failure', "
            "'payload': {'message': 'doomed'}, 'kernel': 'k', 'created': 1.0}})\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, timeout=60
        )
        assert proc.returncode == -9  # SIGKILL, holding the shard lock
        store = ShardedStore(root, lock_timeout=5.0)
        assert store.load_all() == {_fp(1): _entry("survivor")}
        # The dead writer's shard lock is reclaimed, not a deadlock.
        leftover = store.append({_fp(2): _entry("after the crash")})
        assert leftover == {}
        assert len(store.load_all()) == 2

    def test_injected_torn_append_recovers_other_records(self, tmp_path, monkeypatch):
        root = tmp_path / "store"
        store = ShardedStore(root)
        survivor, doomed = "a" * 64, "b" * 64  # distinct shards
        store.append({survivor: _entry("before")})
        spec = write_spec(
            tmp_path / "faults.json",
            tmp_path / "faults-state",
            [{"site": "shard-log", "kind": "truncate", "occurrences": [1]}],
        )
        monkeypatch.setenv(ENV_VAR, str(spec))
        store.append({doomed: _entry("torn mid-write")})  # shard torn in half
        monkeypatch.delenv(ENV_VAR)
        with pytest.warns(CacheIntegrityWarning, match="undecodable"):
            entries = ShardedStore(root).load_all()
        assert entries == {survivor: _entry("before")}
        # The torn shard heals on the next append and compacts away the
        # damaged line once the shard crosses the compaction threshold.
        healed = ShardedStore(root, compact_min_records=2, compact_factor=100)
        healed.append({doomed: _entry("retried")})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert healed.load_all()[doomed] == _entry("retried")
        assert healed.compactions >= 1  # damage triggers the rewrite


class TestReportParity:
    SOURCE = (
        "subroutine doubler(n, a, b)\n"
        "real (kind=8), dimension(1:n) :: a\n"
        "real (kind=8), dimension(1:n) :: b\n"
        "integer :: n\n"
        "do i = 2, n-1\n"
        "  a(i) = b(i-1) + b(i+1)\n"
        "enddo\n"
        "end subroutine doubler\n"
    )

    def test_sharded_and_legacy_reports_are_byte_identical(self, tmp_path):
        options = PipelineOptions(verifier_environments=1, inductive=False)
        legacy_cache = SynthesisCache(tmp_path / "legacy.json", autosave=False)
        legacy = translate_application(
            self.SOURCE, options, cache=legacy_cache, driver="doubler"
        )
        sharded_cache = SynthesisCache(tmp_path / "sharded", autosave=False)
        sharded = translate_application(
            self.SOURCE, options, cache=sharded_cache, driver="doubler"
        )
        assert [report_signature(tk.report) for tk in legacy.translated] == [
            report_signature(tk.report) for tk in sharded.translated
        ]
        # Warm through the sharded store: same bytes, zero synthesis.
        warm_cache = SynthesisCache(tmp_path / "sharded", autosave=False)
        warm = translate_application(
            self.SOURCE, options, cache=warm_cache, driver="doubler"
        )
        assert warm.cache_misses == 0
        assert [report_signature(tk.report) for tk in warm.translated] == [
            report_signature(tk.report) for tk in legacy.translated
        ]
