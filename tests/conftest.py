"""Shared test configuration."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running proof/synthesis tests (seconds, not ms)"
    )
