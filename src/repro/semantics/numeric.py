"""Shared numeric coercion and comparison for every evaluation path.

Both expression interpreters (:mod:`repro.semantics.evalexpr`) and the
closure compiler (:mod:`repro.compile`) must agree bit-for-bit on how a
possibly-symbolic value is forced to a concrete number and on how two
values compare.  Keeping the single implementation here guarantees
that: the interpreted and compiled evaluators literally call the same
functions, so toggling compilation cannot change a single comparison.
"""

from __future__ import annotations

from repro.symbolic.expr import Const, Expr


class EvalError(Exception):
    """Raised when an expression cannot be evaluated in the given state."""


def coerce_number(value):
    """Force a value to a concrete number.

    Symbolic values must simplify to constants; anything else raises
    :class:`EvalError`.  Concrete numbers (including :class:`Mod7`
    field elements) pass through untouched.
    """
    if isinstance(value, Expr):
        from repro.symbolic.simplify import simplify

        folded = simplify(value)
        if isinstance(folded, Const):
            return folded.value
        raise EvalError(f"expected a concrete number, got symbolic value {value!r}")
    return value


def compare_values(op: str, left, right) -> bool:
    """Compare two values; symbolic operands must simplify to constants."""
    left = coerce_number(left)
    right = coerce_number(right)
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "==":
        return left == right
    if op in {"/=", "!="}:
        return left != right
    raise EvalError(f"unknown comparison operator {op!r}")
