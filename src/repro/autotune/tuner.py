"""The multi-armed-bandit autotuner (OpenTuner's coordination strategy).

The tuner repeatedly asks one of its techniques for a candidate
schedule, evaluates it with the supplied objective, and rewards the
technique when the candidate improves on the incumbent.  Technique
selection is an epsilon-greedy bandit over the recent reward rates,
which is the essence of OpenTuner's AUC-bandit meta-technique.

The objective is just a callable ``schedule -> cost``; the tuner does
not care whether the cost is the analytical runtime of
:mod:`repro.perfmodel` (:func:`repro.autotune.modeled_objective`) or
the measured wall-clock time of the schedule's lowered loop nest
(:class:`repro.autotune.MeasuredObjective`).

Measured objectives additionally expose the split
``prepare``/``measure_prepared`` protocol, and for those the tuner runs
a *compile-ahead pipeline*: candidate schedules are proposed eagerly
and their expensive half (lowering, code generation, the external C
compiler — which releases the GIL) runs on a small background thread
pool, while wall-clock timing stays strictly serial on the calling
thread, in submission order.  Timing is the part that must not overlap
anything — a concurrent compile on another core would perturb the very
measurement being taken — so only compilation is parallelised.  The
search stays deterministic for a fixed seed: proposals are drawn on the
timing thread only, and measurements land in FIFO order regardless of
which compile finishes first.  Objectives without the protocol (the
modeled objective) keep the exact legacy serial loop.
"""

from __future__ import annotations

import os
import random
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.autotune.space import ScheduleSpace
from repro.autotune.techniques import DEFAULT_TECHNIQUES, Technique
from repro.halide.schedule import Schedule

Objective = Callable[[Schedule], float]


@dataclass
class AutotuneResult:
    """Outcome of one tuning run.

    ``evaluations`` keeps its historical meaning — budget consumed,
    including candidates whose cost was *replayed* from the dedup cache
    rather than re-measured.  ``pruned_illegal`` counts proposals the
    static legality checker rejected before any compile or measurement;
    ``pruned_duplicate`` counts replayed candidates.  The objective's
    own counter (``objective.evaluations`` for measured objectives) is
    what actually shrinks when pruning bites.
    """

    best_schedule: Schedule
    best_cost: float
    default_cost: float
    evaluations: int
    technique_wins: Dict[str, int] = field(default_factory=dict)
    history: List[float] = field(default_factory=list)
    pruned_illegal: int = 0
    pruned_duplicate: int = 0

    @property
    def improvement(self) -> float:
        """How much faster the tuned schedule is than the default one."""
        if self.best_cost <= 0:
            return 1.0
        return self.default_cost / self.best_cost


class MultiArmedBanditTuner:
    """Epsilon-greedy bandit over an ensemble of search techniques."""

    def __init__(
        self,
        space: ScheduleSpace,
        objective: Objective,
        techniques: Optional[Sequence[Technique]] = None,
        epsilon: float = 0.25,
        window: int = 20,
        seed: int = 0,
        legality=None,
    ):
        """``legality`` is an optional
        :class:`repro.analysis.legality.ScheduleChecker`.  With one
        attached the tuner (a) rejects statically-illegal proposals
        before spending any compile/measure budget on them and (b)
        replays the cached cost of a traversal it has already measured
        (two distinct ``Schedule`` values lowering to the same nest)
        instead of measuring it again.  The candidate stream, rewards
        and incumbent match the unchecked run exactly — the pruning is
        observable only in the objective's evaluation count and the
        ``pruned_*`` fields of the result.  ``None`` keeps legacy
        behavior bit for bit.
        """
        self.space = space
        self.objective = objective
        self.techniques = list(techniques) if techniques else [factory() for factory in DEFAULT_TECHNIQUES]
        self.epsilon = epsilon
        self.window = window
        self.rng = random.Random(seed)
        self.legality = legality
        self._recent_rewards: Dict[str, List[float]] = {t.name: [] for t in self.techniques}

    # -- bandit -----------------------------------------------------------
    def _pick_technique(self) -> Technique:
        if self.rng.random() < self.epsilon:
            return self.rng.choice(self.techniques)
        best_rate = -1.0
        best_technique = self.techniques[0]
        for technique in self.techniques:
            rewards = self._recent_rewards[technique.name][-self.window:]
            rate = sum(rewards) / len(rewards) if rewards else 0.5
            if rate > best_rate:
                best_rate = rate
                best_technique = technique
        return best_technique

    def _reward(self, technique: Technique, value: float) -> None:
        self._recent_rewards[technique.name].append(value)

    # -- main loop -----------------------------------------------------------
    def tune(self, budget: int = 200, pipeline_depth: Optional[int] = None) -> AutotuneResult:
        """Search for ``budget`` evaluations and return the best schedule.

        When the objective implements ``prepare``/``measure_prepared``
        (measured objectives do), candidate compilation is pipelined on
        a background thread pool of ``pipeline_depth`` workers (default
        ``min(4, max(2, cpu_count))``) while timing stays serial in
        submission order.  Other objectives run the legacy serial loop;
        ``pipeline_depth`` is ignored for them.
        """
        prepare = getattr(self.objective, "prepare", None)
        measure_prepared = getattr(self.objective, "measure_prepared", None)
        if prepare is None or measure_prepared is None:
            return self._tune_serial(budget)
        if pipeline_depth is None:
            pipeline_depth = min(4, max(2, os.cpu_count() or 1))
        return self._tune_pipelined(budget, max(1, pipeline_depth))

    def _tune_serial(self, budget: int) -> AutotuneResult:
        """The classic propose-measure-reward loop, one candidate at a time."""
        measured_costs: Dict[tuple, float] = {}
        pruned = {"illegal": 0, "duplicate": 0}

        def evaluate(schedule: Schedule) -> float:
            if self.legality is None:
                return self.objective(schedule)
            key = self.legality.key(schedule)
            if key in measured_costs:
                pruned["duplicate"] += 1
                return measured_costs[key]
            cost = self.objective(schedule)
            measured_costs[key] = cost
            return cost

        default = self.space.default_schedule()
        default_cost = evaluate(default)
        best_schedule, best_cost = default, default_cost
        start = self.space.sensible_schedule()
        evaluations = 1
        if self.legality is None or self.legality.is_legal(start):
            start_cost = evaluate(start)
            evaluations += 1
            # The sensible seed wins ties, matching the historical loop
            # (which seeded the incumbent with it before trying default).
            if start_cost <= best_cost:
                best_schedule, best_cost = start, start_cost
        else:
            pruned["illegal"] += 1
        wins: Dict[str, int] = {t.name: 0 for t in self.techniques}
        history: List[float] = [best_cost]
        while evaluations < budget:
            technique = self._pick_technique()
            candidate = technique.propose(self.space, best_schedule, self.rng)
            try:
                candidate.validate(self.space.dimensions)
            except Exception:
                self._reward(technique, 0.0)
                continue
            if self.legality is not None and not self.legality.is_legal(candidate):
                pruned["illegal"] += 1
                self._reward(technique, 0.0)
                continue
            cost = evaluate(candidate)
            evaluations += 1
            improved = cost < best_cost
            self._reward(technique, 1.0 if improved else 0.0)
            if improved:
                best_schedule, best_cost = candidate, cost
                wins[technique.name] += 1
            history.append(best_cost)
        return AutotuneResult(
            best_schedule=best_schedule,
            best_cost=best_cost,
            default_cost=default_cost,
            evaluations=evaluations,
            technique_wins=wins,
            history=history,
            pruned_illegal=pruned["illegal"],
            pruned_duplicate=pruned["duplicate"],
        )

    def _tune_pipelined(self, budget: int, depth: int) -> AutotuneResult:
        """Compile-ahead search: background compiles, strictly serial timing.

        A FIFO of at most ``depth`` in-flight candidates keeps the
        compile pool busy; the timing thread proposes replacements (and
        draws every random number) as it drains the head, so a fixed
        seed gives a fixed candidate sequence.  Early proposals are
        mutated from the default schedule until the first measurements
        land — the prefetch trade-off of any compile-ahead pipeline.
        ``budget`` counts total submissions, so total measurements match
        the serial loop for ``budget >= 2``.
        """
        budget = max(1, budget)
        default = self.space.default_schedule()
        wins: Dict[str, int] = {t.name: 0 for t in self.techniques}
        history: List[float] = []
        best_schedule = default
        best_cost = float("inf")
        default_cost = float("inf")
        measured = 0
        measured_costs: Dict[tuple, float] = {}
        pruned_illegal = 0
        pruned_duplicate = 0
        with ThreadPoolExecutor(max_workers=depth, thread_name_prefix="repro-tune-compile") as pool:
            # Each entry: (technique or None for the seeds, schedule, future).
            # ``future`` is either a pool future or a ("replay", cost)
            # tuple when the canonical traversal was already timed —
            # dedup is decided at submit time against *completed*
            # measurements only, so the candidate stream stays identical
            # to the unchecked run.
            pending: "deque[tuple[Optional[Technique], Schedule, object]]" = deque()
            submitted = 0

            def submit(technique: Optional[Technique], schedule: Schedule) -> None:
                nonlocal submitted, pruned_duplicate
                if self.legality is not None:
                    key = self.legality.key(schedule)
                    if key in measured_costs:
                        pruned_duplicate += 1
                        pending.append(
                            (technique, schedule, ("replay", measured_costs[key]))
                        )
                        submitted += 1
                        return
                pending.append(
                    (technique, schedule, pool.submit(self.objective.prepare, schedule))
                )
                submitted += 1

            submit(None, default)
            if submitted < budget:
                sensible = self.space.sensible_schedule()
                if self.legality is None or self.legality.is_legal(sensible):
                    submit(None, sensible)
                else:
                    pruned_illegal += 1
            while pending:
                while submitted < budget and len(pending) < depth:
                    technique = self._pick_technique()
                    candidate = technique.propose(self.space, best_schedule, self.rng)
                    try:
                        candidate.validate(self.space.dimensions)
                    except Exception:
                        self._reward(technique, 0.0)
                        continue
                    if self.legality is not None and not self.legality.is_legal(candidate):
                        pruned_illegal += 1
                        self._reward(technique, 0.0)
                        continue
                    submit(technique, candidate)
                technique, schedule, future = pending.popleft()
                if isinstance(future, tuple) and future[0] == "replay":
                    cost = future[1]
                else:
                    measurement = self.objective.measure_prepared(future.result())
                    cost = measurement.seconds
                    if self.legality is not None:
                        measured_costs[self.legality.key(schedule)] = cost
                measured += 1
                if measured == 1:
                    default_cost = cost
                improved = cost < best_cost
                if technique is not None:
                    self._reward(technique, 1.0 if improved else 0.0)
                if improved:
                    best_schedule, best_cost = schedule, cost
                    if technique is not None:
                        wins[technique.name] += 1
                if measured >= 2:
                    history.append(best_cost)
        return AutotuneResult(
            best_schedule=best_schedule,
            best_cost=best_cost,
            default_cost=default_cost,
            evaluations=measured,
            technique_wins=wins,
            history=history,
            pruned_illegal=pruned_illegal,
            pruned_duplicate=pruned_duplicate,
        )


def autotune(
    dimensions: int,
    objective: Objective,
    budget: int = 200,
    seed: int = 0,
) -> AutotuneResult:
    """Convenience wrapper used by the pipeline and the benchmarks."""
    space = ScheduleSpace(dimensions=dimensions)
    tuner = MultiArmedBanditTuner(space, objective, seed=seed)
    return tuner.tune(budget=budget)
