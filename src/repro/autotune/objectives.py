"""Objectives for the schedule tuner: modeled and measured.

The tuner (:class:`repro.autotune.MultiArmedBanditTuner`) only sees the
``Objective`` protocol — ``schedule -> cost`` — and does not care where
the cost comes from.  Two implementations exist:

* :func:`modeled_objective` wraps the analytical roofline model of
  :mod:`repro.perfmodel` (deterministic, instantaneous; what the
  pipeline's Table 1 columns use); and
* :class:`MeasuredObjective` *runs* the schedule: the (Func, Schedule)
  pair is lowered to a loop nest (:mod:`repro.halide.lower`), executed
  on one of the loop-nest backends, and timed.  Every measured run is
  differentially checked against the schedule-blind reference
  ``realize`` — a schedule reorders traversal, never the arithmetic per
  cell, so the output buffer must be **bit-identical**; any deviation
  raises :class:`DifferentialCheckError` instead of silently tuning a
  miscompiled nest.

This is the paper's missing half made concrete: OpenTuner optimised
real Halide binaries, and with a measured objective this reproduction
optimises real executions too, not just the model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.halide.executor import realize
from repro.halide.lang import Func
from repro.halide.lower import compile_loop_nest, lower
from repro.halide.loopir import execute_loop_nest
from repro.halide.schedule import Schedule
from repro.native.toolchain import resolve_backend
from repro.perfmodel.compiler import HALIDE_CPU
from repro.perfmodel.machine import MachineModel, XEON_NODE
from repro.perfmodel.workload import KernelWorkload

Objective = Callable[[Schedule], float]


class DifferentialCheckError(AssertionError):
    """A measured schedule produced output differing from the reference."""


def modeled_objective(
    workload: KernelWorkload,
    machine: MachineModel = XEON_NODE,
) -> Objective:
    """The analytic objective: estimated runtime under the roofline model."""

    def objective(schedule: Schedule) -> float:
        return HALIDE_CPU.runtime(workload, schedule, machine)

    return objective


@dataclass
class Measurement:
    """One timed evaluation of a schedule.

    ``repeats_run`` counts the timed repeats actually executed and
    ``aborted`` is true when the early-abort cut the repeat loop short:
    the candidate's best-so-far already exceeded the incumbent minimum,
    so its reported ``seconds`` — a valid upper bound on its true min —
    could never have displaced the incumbent anyway.
    """

    schedule: Schedule
    seconds: float
    verified: bool
    repeats_run: int = 1
    aborted: bool = False


@dataclass
class PreparedSchedule:
    """A schedule lowered and compiled, ready to be timed.

    Produced by :meth:`MeasuredObjective.prepare` — the expensive,
    thread-safe half of a measurement (lowering, code generation, the
    external C compiler).  :meth:`MeasuredObjective.measure_prepared`
    consumes it on the timing thread.
    """

    schedule: Schedule
    run: Callable[[], np.ndarray]
    backend: str


class MeasuredObjective:
    """Wall-clock objective: lower, execute and time a schedule.

    Parameters
    ----------
    func, domain, inputs, input_origins, params:
        The workload, exactly as :func:`repro.halide.executor.realize`
        takes it.  The schedule-blind reference output is computed once
        at construction and every measured run is compared against it.
    backend:
        ``"codegen"`` (generated-Python, the default), ``"interp"``
        (the tiled-NumPy interpreter), ``"native"`` (compiled C via
        :mod:`repro.native`), or ``"auto"`` (native when a C toolchain
        is present, codegen otherwise).  When native compilation is
        unavailable for a schedule's nest — no toolchain, or the
        definition falls outside the bit-identical C fragment — the
        measurement silently uses codegen; :attr:`effective_backend`
        records what actually ran last.
    repeats:
        Timed runs per schedule; the *minimum* is reported (standard
        practice for microbenchmarks — noise only ever adds time).
    warmup:
        Discarded runs before the timed window.  The first call of a
        freshly lowered nest pays one-time costs that are not steady
        state (allocator warm-up, branch history, ``dlopen``/page
        faults for the native backend); timing it used to leak that
        cost into the min-of-repeats, biasing the tuner against
        whichever schedule it happened to evaluate first.
    differential:
        When true (default) every measured output is checked
        bit-identical to the reference.
    artifacts:
        Optional :class:`~repro.cache.artifacts.ArtifactStore` so the
        native backend reuses compiled kernels across processes.
    threads:
        Native worker-thread count for measured runs (``None`` → the
        process default).  Ignored by the Python backends.
    early_abort:
        When true (default), the repeat loop of a candidate stops as
        soon as its best-so-far exceeds the incumbent minimum across
        all previous candidates.  The partial minimum it reports is an
        upper bound on the candidate's true minimum that is *already*
        worse than the incumbent, so the incumbent never changes —
        under a deterministic clock the selected winner is provably
        identical to the non-aborting run (the regression tests assert
        this); under real noise the abort trades the tail chance that
        a slow first repeat was a fluke for substantially less timing
        work per losing candidate.
    """

    def __init__(
        self,
        func: Func,
        domain,
        inputs: Mapping[str, np.ndarray],
        input_origins: Optional[Mapping[str, Tuple[int, ...]]] = None,
        params: Optional[Mapping[str, float]] = None,
        backend: str = "codegen",
        repeats: int = 1,
        differential: bool = True,
        strict_bounds: bool = False,
        parallel_chunks: int = 8,
        warmup: int = 1,
        artifacts=None,
        threads: Optional[int] = None,
        early_abort: bool = True,
    ):
        self.func = func
        self.domain = list(domain)
        self.inputs = inputs
        self.input_origins = dict(input_origins or {})
        self.params = dict(params or {})
        self.backend = resolve_backend(backend)
        self.effective_backend = self.backend
        self.repeats = max(1, repeats)
        self.warmup = max(0, warmup)
        self.differential = differential
        self.strict_bounds = strict_bounds
        self.parallel_chunks = parallel_chunks
        self.artifacts = artifacts
        self.threads = threads
        self.early_abort = early_abort
        self.reference = realize(
            func, self.domain, inputs, self.input_origins, self.params, strict_bounds
        )
        self.history: List[Measurement] = []
        self.evaluations = 0
        # Incumbent minimum across every candidate measured so far; the
        # early-abort threshold.  Only measure_prepared updates it.
        self.best_seconds = float("inf")

    def _runner(self, schedule: Schedule):
        """Lower + compile one schedule into a zero-arg run callable.

        Pure with respect to objective state (no mutation), so the
        pipelined tuner may call it — via :meth:`prepare` — from a
        background thread while the timing thread measures an earlier
        candidate.  Each call lowers a fresh nest, so per-nest runner
        memoisation never crosses threads, and the dominant cost on the
        native backend (the external C compiler) releases the GIL.

        The backend that actually ran (native falls back to codegen
        silently) is recorded on the callable as ``run.backend``.
        """
        nest = lower(self.func, schedule, self.parallel_chunks)
        if self.backend == "interp":
            def run():
                return execute_loop_nest(
                    nest, self.domain, self.inputs, self.input_origins,
                    self.params, self.strict_bounds,
                )
            run.backend = "interp"
            return run
        runner = None
        if self.backend == "native":
            from repro.native.csource import NativeUnsupportedError
            from repro.native.dispatch import compile_nest_native
            from repro.native.toolchain import ToolchainError

            try:
                runner = compile_nest_native(
                    nest,
                    self.strict_bounds,
                    artifacts=self.artifacts,
                    threads=self.threads,
                )
            except (NativeUnsupportedError, ToolchainError):
                runner = None  # measure on codegen instead
        backend_used = "native" if runner is not None else "codegen"
        if runner is None:
            runner = compile_loop_nest(nest, self.strict_bounds)

        def run():
            return runner(self.domain, self.inputs, self.input_origins, self.params)

        run.backend = backend_used
        return run

    def _build(self, schedule: Schedule):
        """Lower + compile one schedule; returns ``(run, backend_used)``."""
        run = self._runner(schedule)
        return run, getattr(run, "backend", self.backend)

    def prepare(self, schedule: Schedule) -> PreparedSchedule:
        """The compile half of a measurement (safe off the timing thread)."""
        run, backend_used = self._build(schedule)
        return PreparedSchedule(schedule=schedule, run=run, backend=backend_used)

    def measure_prepared(self, prepared: PreparedSchedule) -> Measurement:
        """Time an already-compiled schedule and differentially check it.

        ``warmup`` runs are executed and *discarded* first, so the
        min-of-``repeats`` window times only steady-state calls.  With
        :attr:`early_abort`, the repeat loop stops once the candidate's
        best-so-far exceeds the incumbent minimum.
        """
        schedule = prepared.schedule
        run = prepared.run
        if self.backend != "interp":
            self.effective_backend = prepared.backend
        best = float("inf")
        out = None
        for _ in range(self.warmup):
            out = run()
        repeats_run = 0
        aborted = False
        for _ in range(self.repeats):
            start = time.perf_counter()
            out = run()
            best = min(best, time.perf_counter() - start)
            repeats_run += 1
            if (
                self.early_abort
                and repeats_run < self.repeats
                and best > self.best_seconds
            ):
                aborted = True
                break
        verified = False
        if self.differential:
            if not np.array_equal(out, self.reference):
                raise DifferentialCheckError(
                    f"schedule [{schedule.describe()}] on backend {self.backend!r} "
                    f"produced output differing from the schedule-blind reference "
                    f"(max abs diff {float(np.max(np.abs(out - self.reference)))})"
                )
            verified = True
        measurement = Measurement(
            schedule=schedule,
            seconds=best,
            verified=verified,
            repeats_run=repeats_run,
            aborted=aborted,
        )
        self.history.append(measurement)
        self.evaluations += 1
        self.best_seconds = min(self.best_seconds, best)
        return measurement

    def measure(self, schedule: Schedule) -> Measurement:
        """Compile, then time: :meth:`prepare` + :meth:`measure_prepared`."""
        return self.measure_prepared(self.prepare(schedule))

    def __call__(self, schedule: Schedule) -> float:
        return self.measure(schedule).seconds

    @property
    def all_verified(self) -> bool:
        """Did every measured schedule pass the differential check?"""
        return bool(self.history) and all(m.verified for m in self.history)
