"""Abstract syntax tree for the Fortran subset.

Note the classic Fortran ambiguity: ``b(i, j)`` is an array reference
if ``b`` is declared as an array and a function call otherwise.  The
parser produces :class:`Ref` nodes for both; disambiguation happens
during lowering, when declarations are known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class FExpr:
    """Base class of Fortran expressions."""


@dataclass(frozen=True)
class Num(FExpr):
    """Numeric literal; ``is_real`` distinguishes ``1`` from ``1.0``/``1d0``."""

    text: str
    is_real: bool

    @property
    def value(self) -> float:
        normalized = self.text.lower().replace("d", "e")
        return float(normalized)

    def __repr__(self) -> str:
        return self.text


@dataclass(frozen=True)
class Ref(FExpr):
    """A name, possibly with subscripts: scalar, array element or call."""

    name: str
    subscripts: Tuple[FExpr, ...] = ()

    def __repr__(self) -> str:
        if not self.subscripts:
            return self.name
        return f"{self.name}({', '.join(map(repr, self.subscripts))})"


@dataclass(frozen=True)
class BinExpr(FExpr):
    """Arithmetic binary expression; ``op`` in ``+ - * / **``."""

    op: str
    left: FExpr
    right: FExpr

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnaryExpr(FExpr):
    """Unary ``+``/``-``."""

    op: str
    operand: FExpr

    def __repr__(self) -> str:
        return f"({self.op}{self.operand!r})"


@dataclass(frozen=True)
class CompareExpr(FExpr):
    """Relational expression; ``op`` normalised to ``< <= > >= == /=``."""

    op: str
    left: FExpr
    right: FExpr

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class LogicalExpr(FExpr):
    """Logical connective over comparisons: ``.and.``, ``.or.``, ``.not.``."""

    op: str
    operands: Tuple[FExpr, ...]

    def __repr__(self) -> str:
        if self.op == ".not.":
            return f"(.not. {self.operands[0]!r})"
        joined = f" {self.op} ".join(map(repr, self.operands))
        return f"({joined})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class FStmt:
    """Base class of Fortran statements."""


@dataclass
class Assignment(FStmt):
    """``target = value`` where ``target`` is a scalar or array element."""

    target: Ref
    value: FExpr
    line: int = 0


@dataclass
class DoLoop(FStmt):
    """``do var = lower, upper [, step]`` ... ``enddo``."""

    var: str
    lower: FExpr
    upper: FExpr
    step: Optional[FExpr]
    body: List[FStmt] = field(default_factory=list)
    line: int = 0


@dataclass
class IfBlock(FStmt):
    """``if (cond) then ... [else ...] endif`` (or one-line logical if)."""

    condition: FExpr
    then_body: List[FStmt] = field(default_factory=list)
    else_body: List[FStmt] = field(default_factory=list)
    line: int = 0


@dataclass
class CallStmt(FStmt):
    """``call name(args)`` — always disqualifies the enclosing loop nest."""

    name: str
    args: Tuple[FExpr, ...] = ()
    line: int = 0


@dataclass
class ControlStmt(FStmt):
    """Unstructured control flow: ``exit``, ``cycle``, ``goto``, ``return``."""

    kind: str
    line: int = 0


# ---------------------------------------------------------------------------
# Declarations and program structure
# ---------------------------------------------------------------------------

@dataclass
class Declaration(FStmt):
    """Type declaration statement.

    ``dims`` holds per-name dimension specs; a spec is a tuple of
    ``(lower, upper)`` expression pairs or ``None`` for scalars.
    """

    base_type: str  # "real", "integer", "logical", "double precision"
    names: List[str]
    dims: dict
    kind: Optional[str] = None
    is_pointer: bool = False
    intent: Optional[str] = None
    line: int = 0


@dataclass
class Procedure:
    """A subroutine/procedure/function definition."""

    name: str
    params: List[str]
    declarations: List[Declaration] = field(default_factory=list)
    body: List[FStmt] = field(default_factory=list)
    annotations: List[str] = field(default_factory=list)
    line: int = 0

    def array_names(self) -> List[str]:
        """Names declared with a dimension spec."""
        names: List[str] = []
        for decl in self.declarations:
            for name in decl.names:
                if decl.dims.get(name) is not None and name not in names:
                    names.append(name)
        return names

    def declared_type(self, name: str) -> Optional[str]:
        for decl in self.declarations:
            if name in decl.names:
                return decl.base_type
        return None

    def dimension_of(self, name: str):
        for decl in self.declarations:
            if name in decl.names and decl.dims.get(name) is not None:
                return decl.dims[name]
        return None


@dataclass
class Program:
    """A parsed Fortran source file: an ordered list of procedures."""

    procedures: List[Procedure] = field(default_factory=list)

    def procedure(self, name: str) -> Procedure:
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(f"no procedure named {name!r}")
