"""Tests for the Halide DSL, code generation backends, autotuner and perf models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autotune import ScheduleSpace, autotune
from repro.backend.accessors import AccessorRecoveryError, recover_multidim_access
from repro.backend.cgen import emit_serial_c
from repro.backend.gluegen import emit_fortran_glue
from repro.backend.halidegen import HalideGenerationError, postcondition_to_func
from repro.frontend import identify_candidates, parse_source
from repro.frontend.lowering import lower_candidate
from repro.halide import Func, ImageParam, Schedule, Var, emit_cpp, realize
from repro.halide.gpu import GPUModel
from repro.halide.schedule import ScheduleError
from repro.ir.flatten import flatten_kernel
from repro.perfmodel import (
    GFORTRAN,
    HALIDE_CPU,
    IFORT_PARALLEL,
    XEON_NODE,
    estimate_runtime,
    workload_from_func,
    workload_from_kernel,
)
from repro.perfmodel.compiler import IFORT_PARALLEL_CLEAN
from repro.suites import stencil_fortran
from repro.suites.base import box_3d, cross_2d
from repro.synthesis import synthesize_kernel
from repro.symbolic import sym

RUNNING_EXAMPLE = """
procedure sten(imin,imax,jmin,jmax,a,b)
real (kind=8), dimension(imin:imax,jmin:jmax) :: a
real (kind=8), dimension(imin:imax,jmin:jmax) :: b
do j=jmin,jmax
t = b(imin, j)
do i=imin+1,imax
q = b(i,j)
a(i,j) = q + t
t = q
enddo
enddo
end procedure
"""


def kernel_from_source(source: str):
    return lower_candidate(identify_candidates(parse_source(source)).candidates[0])


@pytest.fixture(scope="module")
def lifted_running_example():
    return synthesize_kernel(kernel_from_source(RUNNING_EXAMPLE), seed=1)


class TestHalideLang:
    def test_func_definition_and_repr(self):
        x, y = Var("x"), Var("y")
        b = ImageParam("b", 2)
        f = Func("f")
        f[x, y] = b(x - 1, y) + b(x, y)
        assert f.dimensions == 2
        assert f.loads_per_point() == 2
        assert f.arith_ops() >= 2
        assert [p.name for p in f.inputs()] == ["b"]

    def test_image_param_arity_checked(self):
        b = ImageParam("b", 2)
        with pytest.raises(Exception):
            b(1)

    def test_realize_matches_manual_numpy(self):
        x, y = Var("x"), Var("y")
        b = ImageParam("b", 2)
        f = Func()
        f[x, y] = b(x - 1, y) + b(x, y)
        data = np.arange(20, dtype=float).reshape(5, 4)
        out = realize(f, [(1, 4), (0, 3)], {"b": data})
        expected = data[0:4, :] + data[1:5, :]
        assert np.allclose(out, expected)

    def test_realize_with_input_origin(self):
        x = Var("x")
        b = ImageParam("b", 1)
        f = Func()
        f[x] = b(x) * 2.0
        data = np.array([1.0, 2.0, 3.0])
        out = realize(f, [(10, 12)], {"b": data}, input_origins={"b": (10,)})
        assert np.allclose(out, [2.0, 4.0, 6.0])

    def test_cpp_emission_matches_figure_1d_shape(self):
        x, y = Var("i"), Var("j")
        b = ImageParam("b", 2)
        f = Func("ex1")
        f[x, y] = b(x - 1, y) + b(x, y)
        cpp = emit_cpp(f, "ex1")
        assert "ImageParam b(type_of<double>(), 2);" in cpp
        assert "func(i, j) = (b((i - 1), j) + b(i, j));" in cpp
        assert 'compile_to_file("ex1"' in cpp

    def test_schedule_validation(self):
        with pytest.raises(ScheduleError):
            Schedule().with_vectorize(3)

    def test_out_of_range_parallel_dim_fails_at_lower_time(self):
        from repro.halide.lower import lower

        x = Var("x")
        b = ImageParam("b", 1)
        f = Func("range_check")
        f[x] = b(x) * 2.0
        with pytest.raises(ScheduleError, match="parallel dimension 5 out of range"):
            lower(f, Schedule(parallel_dim=5))

    def test_schedule_describe(self):
        text = Schedule.baseline_parallel(2).describe()
        assert "parallel" in text and "vectorize" in text


class TestBackends:
    def test_postcondition_to_func_running_example(self, lifted_running_example):
        stencils = postcondition_to_func(lifted_running_example.post)
        assert len(stencils) == 1
        stencil = stencils[0]
        assert stencil.array == "a"
        assert stencil.func.dimensions == 2
        assert "b(" in stencil.cpp_source

    def test_generated_func_matches_fortran_semantics(self, lifted_running_example):
        stencil = postcondition_to_func(lifted_running_example.post)[0]
        imin, imax, jmin, jmax = 0, 6, 0, 4
        rng = np.random.default_rng(1)
        b = rng.standard_normal((imax - imin + 1, jmax - jmin + 1))
        out = realize(
            stencil.func,
            [(imin + 1, imax), (jmin, jmax)],
            {"b": b},
            input_origins={"b": (imin, jmin)},
        )
        expected = b[0:-1, :] + b[1:, :]
        assert np.allclose(out, expected)

    def test_concrete_domain_and_scheduled_execution(self, lifted_running_example):
        from repro.halide import realize_scheduled

        stencil = postcondition_to_func(lifted_running_example.post)[0]
        env = {"imin": 0, "imax": 6, "jmin": 0, "jmax": 4}
        domain = stencil.concrete_domain(env)
        assert domain == [(1, 6), (0, 4)]
        rng = np.random.default_rng(2)
        b = rng.standard_normal((7, 5))
        reference = realize(stencil.func, domain, {"b": b}, input_origins={"b": (0, 0)})
        scheduled = realize_scheduled(
            stencil.func,
            domain,
            {"b": b},
            input_origins={"b": (0, 0)},
            schedule=Schedule(tile_sizes=(4, 2), vector_width=2, parallel_dim=1),
            strict_bounds=True,
        )
        assert np.array_equal(scheduled, reference)

    def test_five_dimensional_output_rejected(self):
        from repro.predicates import Bound, OutEq, Postcondition, QuantifiedConstraint
        from repro.symbolic import cell

        vars5 = tuple(sym(f"v{d}") for d in range(5))
        conjunct = QuantifiedConstraint(
            tuple(Bound(f"v{d}", sym("lo"), sym("hi")) for d in range(5)),
            OutEq("u", vars5, cell("w", *vars5)),
        )
        with pytest.raises(HalideGenerationError):
            postcondition_to_func(Postcondition((conjunct,)))

    def test_serial_c_generation(self, lifted_running_example):
        source, nests = emit_serial_c(lifted_running_example.post, function_name="sten_clean")
        assert "void sten_clean(" in source
        assert "for (long v0" in source
        assert nests[0].affine_bounds and nests[0].perfectly_nested

    def test_glue_code_generation(self, lifted_running_example):
        kernel = kernel_from_source(RUNNING_EXAMPLE)
        stencils = postcondition_to_func(lifted_running_example.post)
        glue = emit_fortran_glue(kernel, stencils)
        assert "#ifdef STNG_USE_HALIDE" in glue
        assert "call a_stencil_wrapper" in glue

    def test_accessor_recovery_roundtrip(self):
        kernel = kernel_from_source(RUNNING_EXAMPLE)
        flat, infos = flatten_kernel(kernel)
        info = infos["b"]
        # flattened access for b(v0 - 1, v1): (v1 - jmin) * (imax-imin+1) + (v0 - 1 - imin)
        ncols = sym("imax") - sym("imin") + 1
        flat_index = (sym("v1") - sym("jmin")) * ncols + (sym("v0") - 1 - sym("imin"))
        envs = [
            {"imin": 0, "imax": 5, "jmin": 0, "jmax": 4},
            {"imin": 0, "imax": 8, "jmin": 0, "jmax": 6},
        ]
        recovered = recover_multidim_access(flat_index, info, ["v0", "v1"], envs)
        assert repr(recovered[0]) == "(v0 - 1)"
        assert repr(recovered[1]) == "v1"

    def test_accessor_recovery_rejects_nonaffine(self):
        kernel = kernel_from_source(RUNNING_EXAMPLE)
        _, infos = flatten_kernel(kernel)
        with pytest.raises(AccessorRecoveryError):
            recover_multidim_access(sym("v0") * sym("v0"), infos["b"], ["v0", "v1"], [{"imin": 0, "imax": 5, "jmin": 0, "jmax": 4}])


class TestAutotune:
    def test_space_size_is_large(self):
        assert ScheduleSpace(3).size() > 10_000

    def test_tuner_improves_on_default(self):
        kernel = kernel_from_source(stencil_fortran("tune_me", 3, box_3d()))
        workload = workload_from_kernel(kernel, points=128 ** 3)
        result = autotune(3, lambda s: HALIDE_CPU.runtime(workload, s), budget=120, seed=1)
        assert result.best_cost <= result.default_cost
        assert result.improvement >= 1.0
        assert result.best_schedule.parallel_dim is not None

    def test_tuner_is_deterministic_for_fixed_seed(self):
        kernel = kernel_from_source(stencil_fortran("tune_me2", 2, cross_2d()))
        workload = workload_from_kernel(kernel, points=1024 ** 2)
        a = autotune(2, lambda s: HALIDE_CPU.runtime(workload, s), budget=60, seed=7)
        b = autotune(2, lambda s: HALIDE_CPU.runtime(workload, s), budget=60, seed=7)
        assert a.best_cost == b.best_cost


class TestPerfModels:
    def _workloads(self):
        dirty = workload_from_kernel(
            kernel_from_source(stencil_fortran("tiled27", 3, box_3d(), tile={1: 4, 2: 4})),
            points=128 ** 3,
        )
        clean = workload_from_kernel(
            kernel_from_source(stencil_fortran("plain27", 3, box_3d())), points=128 ** 3
        )
        return dirty, clean

    def test_hand_tiling_detected(self):
        dirty, clean = self._workloads()
        assert dirty.hand_tiled and not clean.hand_tiled

    def test_halide_beats_serial_baseline(self):
        _, clean = self._workloads()
        halide = HALIDE_CPU.runtime(clean, Schedule.baseline_parallel(3))
        assert GFORTRAN.runtime(clean) / halide > 1.5

    def test_pathological_autopar_on_tiled_code(self):
        dirty, _ = self._workloads()
        assert IFORT_PARALLEL.runtime(dirty) > 100 * GFORTRAN.runtime(dirty)

    def test_clean_code_recovers_parallel_speedup(self):
        dirty, clean = self._workloads()
        before = GFORTRAN.runtime(dirty) / IFORT_PARALLEL.runtime(dirty)
        after = GFORTRAN.runtime(dirty) / IFORT_PARALLEL_CLEAN.runtime(clean)
        assert after > before
        assert after > 2.0

    def test_gpu_no_transfer_faster_than_with_transfer(self):
        _, clean = self._workloads()
        assert estimate_runtime(clean, "halide-gpu") > estimate_runtime(clean, "halide-gpu-notransfer")

    def test_reduction_like_kernels_transfer_little(self):
        from dataclasses import replace

        _, clean = self._workloads()
        reduction = replace(clean, is_reduction_like=True)
        assert estimate_runtime(reduction, "halide-gpu") < estimate_runtime(clean, "halide-gpu")

    def test_runtime_scales_with_points(self):
        from dataclasses import replace

        _, clean = self._workloads()
        bigger = replace(clean, points=clean.points * 8)
        assert GFORTRAN.runtime(bigger) > GFORTRAN.runtime(clean) * 4

    @given(st.integers(1, 16), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_peak_gflops_monotone(self, cores, vector):
        assert XEON_NODE.peak_gflops(cores, vector) <= XEON_NODE.peak_gflops(cores + 1, vector)

    def test_gpu_model_object(self):
        x, y = Var("x"), Var("y")
        b = ImageParam("b", 2)
        f = Func()
        f[x, y] = b(x - 1, y) + b(x, y)
        gpu = GPUModel()
        assert gpu.total_time(f, 10**6, include_transfer=True) > gpu.total_time(
            f, 10**6, include_transfer=False
        )

    def test_gpu_transfer_charges_per_array_footprints(self):
        from repro.halide.gpu import input_footprints

        x, y = Var("x"), Var("y")
        b = ImageParam("b", 2)
        c = ImageParam("c", 1)
        f = Func()
        f[x, y] = b(x - 1, y) + b(x + 1, y) + b(x, y) + c(y)
        footprints = input_footprints(f, 100 * 100)
        # b's halo is one cell on each side of x only; c is a 1-D table.
        assert footprints["b"] == 102 * 100
        assert footprints["c"] == 100
        gpu = GPUModel()
        seconds = gpu.transfer_time(f, 100 * 100)
        expected = ((102 * 100 + 100 + 100 * 100) * 8) / (gpu.pcie_bandwidth_gbs * 1e9)
        assert seconds == pytest.approx(expected)

    def test_gpu_transfer_no_longer_charges_output_size_per_input(self):
        # Before the fix every input cost `points` elements; a 1-D
        # coefficient table read by a 2-D stencil must cost only its
        # own extent.
        x, y = Var("x"), Var("y")
        b = ImageParam("b", 2)
        c = ImageParam("c", 1)
        f = Func()
        f[x, y] = b(x, y) + c(x)
        points = 64 * 64
        flat_model = 2 * points + points  # two inputs at full size + output
        gpu = GPUModel()
        assert gpu.transfer_time(f, points) < flat_model * 8 / (gpu.pcie_bandwidth_gbs * 1e9)

    def test_gpu_constant_plane_reads_do_not_widen_halo(self):
        from repro.halide.gpu import input_footprints

        x, y = Var("x"), Var("y")
        b = ImageParam("b", 2)
        f = Func()
        f[x, y] = b(x, y) + b(x, 5)
        footprints = input_footprints(f, 100 * 100)
        # An absolute read of plane 5 adds one plane, not a 5-wide halo.
        assert footprints["b"] == 100 * (100 + 1)

    def test_gpu_transfer_output_points_override(self):
        x = Var("x")
        b = ImageParam("b", 1)
        f = Func()
        f[x] = b(x) * 2.0
        gpu = GPUModel()
        # Optional[int] default: omitting output_points must equal passing points.
        assert gpu.transfer_time(f, 1000) == gpu.transfer_time(f, 1000, output_points=1000)
        assert gpu.transfer_time(f, 1000, output_points=1) < gpu.transfer_time(f, 1000)
