"""E7 — Compiled CEGIS inner loop: cold-lift speedup, compiled vs interpreted.

Lifts the Table-1 suite cross-section cold (no cache) twice through the
sequential pipeline: once with the closure-compiled evaluation layer
(:mod:`repro.compile`, the default) and once with the interpreted
fallback (``CompileOptions(enabled=False)``).  Reports must be
byte-identical (via :func:`repro.pipeline.report_signature`) and the
compiled cold lift must be at least 3x faster.

With ``REPRO_FULL=1`` this covers all 93 Table 2 kernels.
"""

from __future__ import annotations

import time

from repro.compile import CompileOptions, clear_compile_caches
from repro.pipeline import PipelineOptions, lift_cases_sequential, report_signature
from repro.symbolic.expr import clear_intern_table
from repro.symbolic.simplify import clear_simplify_cache

COMPILED_SPEEDUP_FLOOR = 3.0

# The Tier-3 inductive prover costs the same in both evaluation modes
# and would dilute the measured ratio; this benchmark isolates the
# compile layer, so it runs the prover-less configuration.
COMPILED = PipelineOptions(autotune_budget=20, verifier_environments=1, inductive=False)
INTERPRETED = PipelineOptions(
    autotune_budget=20,
    verifier_environments=1,
    inductive=False,
    compile_options=CompileOptions(enabled=False),
)


def _timed_cold_lift(cases, options):
    # Both modes lean on process-global memo tables (interned expressions,
    # canonical forms, compiled closures); start each timed run cold so the
    # comparison is order-independent within the benchmark session.
    clear_compile_caches()
    clear_simplify_cache()
    clear_intern_table()
    start = time.perf_counter()
    reports = lift_cases_sequential(cases, options)
    return reports, time.perf_counter() - start


def test_compiled_cold_lift_speedup(selected_cases, benchmark, capsys):
    def compiled_run():
        return _timed_cold_lift(selected_cases, COMPILED)

    compiled_reports, compiled_seconds = benchmark.pedantic(
        compiled_run, rounds=1, iterations=1
    )
    interpreted_reports, interpreted_seconds = _timed_cold_lift(
        selected_cases, INTERPRETED
    )

    speedup = interpreted_seconds / max(compiled_seconds, 1e-9)
    benchmark.extra_info.update(
        {
            "cases": len(selected_cases),
            "compiled_seconds": round(compiled_seconds, 3),
            "interpreted_seconds": round(interpreted_seconds, 3),
            "compiled_speedup": round(speedup, 2),
        }
    )
    with capsys.disabled():
        print("\n=== Compiled CEGIS inner loop (cold lift, Table 1 cross-section) ===")
        print(f"cases: {len(selected_cases)}")
        print(f"compiled    : {compiled_seconds:7.2f}s")
        print(f"interpreted : {interpreted_seconds:7.2f}s")
        print(f"speedup     : {speedup:7.2f}x  (floor {COMPILED_SPEEDUP_FLOOR}x)")

    assert [report_signature(r) for r in compiled_reports] == [
        report_signature(r) for r in interpreted_reports
    ], "compiled and interpreted cold lifts must be byte-identical"
    assert speedup >= COMPILED_SPEEDUP_FLOOR
