"""Closure compilation of IR statements and whole kernels.

``compile_stmt`` translates a statement tree once into closures that
mirror :func:`repro.semantics.exec.execute_statement` exactly: the same
evaluation order (store indices before the stored value), the same
Fortran post-loop counter semantics, the same iteration budget and the
same exception types and messages.  Loop bounds and body are translated
once at compile time — the per-iteration cost is the closure call, not
a re-dispatch over the tree.

``CompiledCollector`` is the compiled twin of the bounded verifier's
reachable-state collector: it executes a kernel concretely while
snapshotting the state at every cut point (top of each loop iteration,
loop exit, kernel entry/exit), in exactly the interpreter's order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.ir import nodes as ir
from repro.semantics.exec import ExecutionError, MAX_ITERATIONS as _MAX_ITERATIONS
from repro.semantics.numeric import EvalError
from repro.semantics.state import State, require_int
from repro.compile.exprcomp import compile_ir_condition, compile_ir_expr
from repro.compile.options import CompileOptions

StmtFn = Callable[[State], None]

_STMT_CACHE: Dict[Tuple[int, CompileOptions], Tuple[ir.Stmt, StmtFn]] = {}
_CACHE_MAX = 1 << 14


def clear_stmt_cache() -> None:
    """Drop memoised compiled statements (tests / cache hygiene)."""
    _STMT_CACHE.clear()


def compile_stmt(stmt: ir.Stmt, options: CompileOptions) -> StmtFn:
    """Compile one IR statement to a ``state -> None`` function."""
    key = (id(stmt), options)
    hit = _STMT_CACHE.get(key)
    if hit is not None:
        return hit[1]
    if options.codegen:
        from repro.compile.codegen import gen_stmt_fn
        from repro.compile.exprcomp import _fold_hook_ir

        fn = gen_stmt_fn(stmt, fold=_fold_hook_ir(options))
    else:
        fn = _compile_stmt(stmt, options)
    if len(_STMT_CACHE) >= _CACHE_MAX:
        _STMT_CACHE.clear()
    _STMT_CACHE[key] = (stmt, fn)
    return fn


def _compile_stmt(stmt: ir.Stmt, options: CompileOptions) -> StmtFn:
    if isinstance(stmt, ir.Block):
        body = tuple(_compile_stmt(inner, options) for inner in stmt.statements)

        def run_block(state, _body=body):
            for fn in _body:
                fn(state)

        return run_block
    if isinstance(stmt, ir.Assign):
        target = stmt.target
        value_fn = compile_ir_expr(stmt.value, options)

        def run_assign(state, _target=target, _value=value_fn):
            state.scalars[_target] = _value(state)

        return run_assign
    if isinstance(stmt, ir.ArrayStore):
        array = stmt.array
        context = f"store index of {array}"
        index_fns = tuple(compile_ir_expr(i, options) for i in stmt.indices)
        value_fn = compile_ir_expr(stmt.value, options)

        def run_store(state, _fns=index_fns, _value=value_fn, _array=array, _ctx=context):
            index = tuple(require_int(fn(state), context=_ctx) for fn in _fns)
            state.array(_array).store(index, _value(state))

        return run_store
    if isinstance(stmt, ir.Loop):
        counter = stmt.counter
        step = stmt.step
        descending = step < 0
        lower_fn = compile_ir_expr(stmt.lower, options)
        upper_fn = compile_ir_expr(stmt.upper, options)
        body_fn = _compile_stmt(stmt.body, options)
        overflow = f"loop over {counter!r} exceeded {_MAX_ITERATIONS} iterations"
        if step == 0:
            def run_zero_step(state):
                raise ExecutionError("loop step must be non-zero")

            return run_zero_step

        def run_loop(
            state,
            _counter=counter,
            _step=step,
            _descending=descending,
            _lower=lower_fn,
            _upper=upper_fn,
            _body=body_fn,
            _overflow=overflow,
        ):
            scalars = state.scalars
            value = require_int(_lower(state), context="loop lower bound")
            upper = require_int(_upper(state), context="loop upper bound")
            iterations = 0
            while value >= upper if _descending else value <= upper:
                scalars[_counter] = value
                _body(state)
                value += _step
                iterations += 1
                if iterations > _MAX_ITERATIONS:
                    raise ExecutionError(_overflow)
            # Fortran semantics: after the loop the counter holds the first
            # value that failed the test.
            scalars[_counter] = value

        return run_loop
    if isinstance(stmt, ir.If):
        cond_fn = compile_ir_condition(stmt.condition, options)
        then_fn = _compile_stmt(stmt.then_body, options)
        else_fn = _compile_stmt(stmt.else_body, options) if stmt.else_body is not None else None

        def run_if(state, _cond=cond_fn, _then=then_fn, _else=else_fn):
            try:
                taken = _cond(state)
            except EvalError as exc:
                raise ExecutionError(f"cannot execute conditional: {exc}") from exc
            if taken:
                _then(state)
            elif _else is not None:
                _else(state)

        return run_if
    message = f"cannot execute statement {stmt!r}"

    def run_unknown(state, _msg=message):
        raise ExecutionError(_msg)

    return run_unknown


def compile_kernel_body(kernel: ir.Kernel, options: CompileOptions) -> StmtFn:
    """Compile a kernel body to an in-place state transformer."""
    return compile_stmt(kernel.body, options)


class CompiledRecordingExecutor:
    """Compiled twin of ``symbolic.interpreter._RecordingExecutor``.

    Executes a kernel (concrete integer bounds, symbolic arrays) while
    recording a scalar-environment snapshot at the top of every loop
    iteration, with the interpreter's loop-id assignment, shared
    iteration budget and exception behaviour.
    """

    def __init__(self, kernel: ir.Kernel, options: CompileOptions, max_iterations=None):
        from repro.ir.analysis import collect_loops, loop_counters
        from repro.symbolic.interpreter import SYMBOLIC_EXECUTION_BUDGET

        if max_iterations is None:
            max_iterations = SYMBOLIC_EXECUTION_BUDGET

        self.kernel = kernel
        self.max_iterations = max_iterations
        self._counter_names = frozenset(loop_counters(kernel))
        loop_ids: Dict[int, str] = {}
        counts: Dict[str, int] = {}
        for loop in collect_loops(kernel.body):
            count = counts.get(loop.counter, 0)
            counts[loop.counter] = count + 1
            loop_ids[id(loop)] = loop.counter if count == 0 else f"{loop.counter}#{count}"
        self._loop_ids = loop_ids
        self._run = self._compile(kernel.body, options)

    def run(self, state: State, record) -> State:
        """Execute the body; ``record(loop_id, state)`` fires per iteration."""
        budget = [0]
        self._run(state, record, budget)
        return state

    def _compile(self, stmt: ir.Stmt, options: CompileOptions):
        from repro.symbolic.interpreter import SymbolicExecutionError

        if isinstance(stmt, ir.Block):
            body = tuple(self._compile(inner, options) for inner in stmt.statements)

            def run_block(state, record, budget, _body=body):
                for fn in _body:
                    fn(state, record, budget)

            return run_block
        if isinstance(stmt, ir.Loop):
            counter = stmt.counter
            step = stmt.step
            descending = step < 0
            if step == 0:
                def run_zero_step(state, record, budget):
                    raise SymbolicExecutionError("loop step must be non-zero")

                return run_zero_step
            loop_id = self._loop_ids[id(stmt)]
            lower_fn = compile_ir_expr(stmt.lower, options)
            upper_fn = compile_ir_expr(stmt.upper, options)
            body_fn = self._compile(stmt.body, options)
            limit = self.max_iterations

            def run_loop(
                state,
                record,
                budget,
                _counter=counter,
                _step=step,
                _descending=descending,
                _loop_id=loop_id,
                _lower=lower_fn,
                _upper=upper_fn,
                _body=body_fn,
                _limit=limit,
            ):
                value = require_int(_lower(state), context="loop lower bound")
                upper = require_int(_upper(state), context="loop upper bound")
                while value >= upper if _descending else value <= upper:
                    state.scalars[_counter] = value
                    record(_loop_id, state)
                    _body(state, record, budget)
                    value += _step
                    budget[0] += 1
                    if budget[0] > _limit:
                        raise SymbolicExecutionError(
                            "symbolic execution exceeded the iteration budget"
                        )
                state.scalars[_counter] = value

            return run_loop
        if isinstance(stmt, ir.If):
            def run_if(state, record, budget):
                raise SymbolicExecutionError(
                    "kernels with conditionals are not executed symbolically "
                    "by the default pipeline"
                )

            return run_if
        if isinstance(stmt, (ir.Assign, ir.ArrayStore)):
            plain = compile_stmt(stmt, options)

            def run_plain(state, record, budget, _plain=plain):
                _plain(state)

            return run_plain

        def run_unknown(state, record, budget, _stmt=stmt):
            raise SymbolicExecutionError(f"cannot execute statement {_stmt!r}")

        return run_unknown


class CompiledCollector:
    """Compiled twin of the verifier's reachable-state collector.

    Mirrors :class:`repro.verification.bounded._ReachableStateCollector`:
    the same cut points, the same snapshot order, the same (context-free)
    ``require_int`` coercions on loop bounds, and no iteration budget.
    """

    def __init__(self, kernel: ir.Kernel, options: CompileOptions):
        self.kernel = kernel
        if options.codegen:
            from repro.compile.codegen import gen_collector_fn
            from repro.compile.exprcomp import _fold_hook_ir

            self._run = gen_collector_fn(kernel.body, fold=_fold_hook_ir(options))
        else:
            self._run = self._compile_collect(kernel.body, options)

    def collect(self, state: State, limit: Optional[int] = None) -> List[State]:
        from repro.verification.bounded import REACHABLE_STATE_LIMIT

        if limit is None:
            limit = REACHABLE_STATE_LIMIT
        states: List[State] = []

        def snapshot(current: State) -> None:
            if len(states) < limit:
                states.append(current.copy())

        snapshot(state)
        self._run(state, snapshot)
        snapshot(state)
        return states

    def _compile_collect(self, stmt: ir.Stmt, options: CompileOptions):
        if isinstance(stmt, ir.Block):
            body = tuple(self._compile_collect(inner, options) for inner in stmt.statements)

            def run_block(state, snapshot, _body=body):
                for fn in _body:
                    fn(state, snapshot)

            return run_block
        if isinstance(stmt, ir.Loop):
            counter = stmt.counter
            step = stmt.step
            descending = step < 0
            if step == 0:
                def run_zero_step(state, snapshot):
                    raise ExecutionError("loop step must be non-zero")

                return run_zero_step
            lower_fn = compile_ir_expr(stmt.lower, options)
            upper_fn = compile_ir_expr(stmt.upper, options)
            body_fn = self._compile_collect(stmt.body, options)

            def run_loop(
                state,
                snapshot,
                _counter=counter,
                _step=step,
                _descending=descending,
                _lower=lower_fn,
                _upper=upper_fn,
                _body=body_fn,
            ):
                value = require_int(_lower(state))
                upper = require_int(_upper(state))
                while value >= upper if _descending else value <= upper:
                    state.scalars[_counter] = value
                    snapshot(state)
                    _body(state, snapshot)
                    value += _step
                state.scalars[_counter] = value
                snapshot(state)

            return run_loop
        plain = compile_stmt(stmt, options)

        def run_plain(state, snapshot, _plain=plain):
            _plain(state)

        return run_plain
