"""Flattening of multidimensional array accesses.

§4.1 of the paper notes that although the presentation uses
multidimensional arrays, STNG actually operates on *flattened* arrays —
the hand-optimised codes it targets index flat buffers through custom
macros.  This module performs the corresponding lowering on our IR:
an access ``a(i, j)`` on an array declared ``dimension(ilo:ihi,
jlo:jhi)`` becomes ``a_flat((j - jlo) * (ihi - ilo + 1) + (i - ilo))``
(column-major, as in Fortran).

Flattening is optional in the pipeline: the synthesizer can work on
either representation, and the flattened form is what makes accessor
recovery (:mod:`repro.backend.accessors`) a non-trivial problem, as in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ir.nodes import (
    ArrayDecl,
    ArrayLoad,
    ArrayStore,
    Assign,
    BinOp,
    Block,
    Compare,
    FuncCall,
    If,
    IntConst,
    Kernel,
    Loop,
    Stmt,
    UnaryOp,
    ValueExpr,
    VarRef,
)


@dataclass(frozen=True)
class FlattenInfo:
    """Record of how one array was flattened.

    ``dim_lowers`` and ``dim_extents`` are the per-dimension lower
    bounds and extents (as IR expressions); accessor recovery inverts
    the flattening using these.
    """

    original: ArrayDecl
    flat_name: str
    dim_lowers: Tuple[ValueExpr, ...]
    dim_extents: Tuple[ValueExpr, ...]


def _extent(lower: ValueExpr, upper: ValueExpr) -> ValueExpr:
    """Extent of one dimension: ``upper - lower + 1``."""
    return BinOp("+", BinOp("-", upper, lower), IntConst(1))


def flatten_index(
    indices: Tuple[ValueExpr, ...],
    lowers: Tuple[ValueExpr, ...],
    extents: Tuple[ValueExpr, ...],
) -> ValueExpr:
    """Column-major linearisation of a multidimensional index tuple."""
    if len(indices) != len(lowers):
        raise ValueError("index arity does not match declaration rank")
    # Fortran column-major: first index varies fastest.
    flat: ValueExpr = BinOp("-", indices[-1], lowers[-1])
    for dim in range(len(indices) - 2, -1, -1):
        flat = BinOp(
            "+",
            BinOp("*", flat, extents[dim]),
            BinOp("-", indices[dim], lowers[dim]),
        )
    return flat


def flatten_kernel(kernel: Kernel, suffix: str = "_flat") -> Tuple[Kernel, Dict[str, FlattenInfo]]:
    """Return a copy of ``kernel`` with every array access flattened.

    Arrays of rank 1 are renamed but keep their single index shifted to
    a zero base, so downstream code can treat every array uniformly.
    The mapping from original array names to :class:`FlattenInfo` is
    returned alongside the new kernel.
    """
    infos: Dict[str, FlattenInfo] = {}
    for decl in kernel.arrays:
        lowers = tuple(lo for lo, _hi in decl.bounds)
        extents = tuple(_extent(lo, hi) for lo, hi in decl.bounds)
        infos[decl.name] = FlattenInfo(
            original=decl,
            flat_name=decl.name + suffix,
            dim_lowers=lowers,
            dim_extents=extents,
        )

    def rewrite_expr(expr: ValueExpr) -> ValueExpr:
        if isinstance(expr, ArrayLoad):
            info = infos.get(expr.array)
            new_indices = tuple(rewrite_expr(i) for i in expr.indices)
            if info is None:
                return ArrayLoad(expr.array, new_indices)
            flat = flatten_index(new_indices, info.dim_lowers, info.dim_extents)
            return ArrayLoad(info.flat_name, (flat,))
        if isinstance(expr, BinOp):
            return BinOp(expr.op, rewrite_expr(expr.left), rewrite_expr(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rewrite_expr(expr.operand))
        if isinstance(expr, FuncCall):
            return FuncCall(expr.func, tuple(rewrite_expr(a) for a in expr.args))
        if isinstance(expr, Compare):
            return Compare(expr.op, rewrite_expr(expr.left), rewrite_expr(expr.right))
        return expr

    def rewrite_stmt(stmt: Stmt) -> Stmt:
        if isinstance(stmt, Block):
            return Block([rewrite_stmt(s) for s in stmt.statements])
        if isinstance(stmt, Loop):
            return Loop(
                counter=stmt.counter,
                lower=rewrite_expr(stmt.lower),
                upper=rewrite_expr(stmt.upper),
                body=rewrite_stmt(stmt.body),  # type: ignore[arg-type]
                step=stmt.step,
            )
        if isinstance(stmt, If):
            return If(
                condition=rewrite_expr(stmt.condition),
                then_body=rewrite_stmt(stmt.then_body),  # type: ignore[arg-type]
                else_body=(
                    rewrite_stmt(stmt.else_body)  # type: ignore[arg-type]
                    if stmt.else_body is not None
                    else None
                ),
            )
        if isinstance(stmt, Assign):
            return Assign(stmt.target, rewrite_expr(stmt.value))
        if isinstance(stmt, ArrayStore):
            info = infos.get(stmt.array)
            new_indices = tuple(rewrite_expr(i) for i in stmt.indices)
            new_value = rewrite_expr(stmt.value)
            if info is None:
                return ArrayStore(stmt.array, new_indices, new_value)
            flat = flatten_index(new_indices, info.dim_lowers, info.dim_extents)
            return ArrayStore(info.flat_name, (flat,), new_value)
        raise TypeError(f"unhandled statement {stmt!r}")

    new_arrays: List[ArrayDecl] = []
    for decl in kernel.arrays:
        info = infos[decl.name]
        total: ValueExpr = info.dim_extents[0]
        for extent in info.dim_extents[1:]:
            total = BinOp("*", total, extent)
        new_arrays.append(
            ArrayDecl(
                name=info.flat_name,
                bounds=((IntConst(0), BinOp("-", total, IntConst(1))),),
                element_type=decl.element_type,
                is_pointer=decl.is_pointer,
            )
        )

    new_kernel = Kernel(
        name=kernel.name,
        params=list(kernel.params),
        arrays=new_arrays,
        scalars=list(kernel.scalars),
        body=rewrite_stmt(kernel.body),  # type: ignore[arg-type]
        assumptions=list(kernel.assumptions),
        source_name=kernel.source_name,
    )
    return new_kernel, infos
