"""Whole-application translation: scan, interpret, substitute, check."""

import json

import numpy as np
import pytest

from repro.application import (
    FortranInterpreter,
    InterpreterError,
    allocate_arrays,
    differential_check,
    run_application,
    scan_application,
    translate_application,
)
from repro.cache.store import SynthesisCache
from repro.frontend.parser import parse_source
from repro.pipeline.report import report_signature
from repro.pipeline.stng import PipelineOptions
from repro.suites.apps import cloverleaf_mini_app, heat_mini_app, mini_app, mini_apps

FAST_OPTIONS = dict(verifier_environments=1)


@pytest.fixture(scope="module")
def bundles():
    """Translate every bundled mini-app once (shared across tests)."""
    return {
        app.name: translate_application(app, PipelineOptions(**FAST_OPTIONS))
        for app in mini_apps()
    }


# ---------------------------------------------------------------------------
# Scan
# ---------------------------------------------------------------------------

class TestScan:
    def test_site_counts_match_app_metadata(self):
        for app in mini_apps():
            scan = scan_application(parse_source(app.source))
            assert len(scan.liftable_sites) == app.expected_liftable, app.name
            assert len(scan.fallback_sites) == app.expected_fallback, app.name

    def test_sites_carry_spans_and_kernels(self):
        app = cloverleaf_mini_app()
        scan = scan_application(parse_source(app.source))
        for site in scan.liftable_sites:
            assert site.end > site.start >= 0
            assert site.kernel is not None
            assert site.kernel.name == site.name
        for site in scan.fallback_sites:
            assert site.reasons

    def test_consecutive_loops_merge_into_one_site(self):
        source = (
            "subroutine two(ilo, ihi, a, b)\n"
            "real (kind=8), dimension(ilo:ihi) :: a\n"
            "real (kind=8), dimension(ilo:ihi) :: b\n"
            "integer :: ilo, ihi\n"
            "do i = ilo+1, ihi\n"
            "  a(i) = b(i) + b(i-1)\n"
            "enddo\n"
            "do i = ilo, ihi\n"
            "  b(i) = a(i)\n"
            "enddo\n"
            "end subroutine two\n"
        )
        scan = scan_application(parse_source(source))
        assert len(scan.sites) == 1
        site = scan.sites[0]
        assert site.liftable and (site.start, site.end) == (0, 2)


# ---------------------------------------------------------------------------
# Reference interpreter
# ---------------------------------------------------------------------------

class TestInterpreter:
    def _run(self, source, proc, scalars, arrays):
        program = parse_source(source)
        return FortranInterpreter(program).run(proc, scalars, arrays)

    def test_loop_counter_holds_exit_value(self):
        source = (
            "subroutine s(n, a)\n"
            "real (kind=8), dimension(1:n) :: a\n"
            "integer :: n\n"
            "do i = 1, n\n"
            "  a(i) = 2.0d0\n"
            "enddo\n"
            "end subroutine s\n"
        )
        scope = self._run(source, "s", {"n": 4}, {"a": np.zeros(4)})
        assert scope.scalars["i"] == 5
        assert np.array_equal(scope.arrays["a"].data, np.full(4, 2.0))

    def test_decrementing_loop_and_conditional(self):
        source = (
            "subroutine s(n, a)\n"
            "real (kind=8), dimension(1:n) :: a\n"
            "integer :: n\n"
            "do i = n, 1, -1\n"
            "  if (a(i) < 0.0d0) then\n"
            "    a(i) = 0.0d0\n"
            "  else\n"
            "    a(i) = a(i) + 1.0d0\n"
            "  endif\n"
            "enddo\n"
            "end subroutine s\n"
        )
        data = np.array([-3.0, 5.0, -1.0, 2.0])
        scope = self._run(source, "s", {"n": 4}, {"a": data})
        assert np.array_equal(scope.arrays["a"].data, [0.0, 6.0, 0.0, 3.0])
        assert scope.scalars["i"] == 0

    def test_call_passes_arrays_by_reference_and_scalars_back(self):
        source = (
            "subroutine inner(n, m, a)\n"
            "real (kind=8), dimension(1:n) :: a\n"
            "integer :: n, m\n"
            "a(1) = 7.0d0\n"
            "m = n + 10\n"
            "end subroutine inner\n"
            "subroutine outer(n, m, a)\n"
            "real (kind=8), dimension(1:n) :: a\n"
            "integer :: n, m\n"
            "call inner(n, m, a)\n"
            "end subroutine outer\n"
        )
        scope = self._run(source, "outer", {"n": 3, "m": 0}, {"a": np.zeros(3)})
        assert scope.arrays["a"].data[0] == 7.0
        assert scope.scalars["m"] == 13

    def test_fortran_array_origins(self):
        source = (
            "subroutine s(ilo, ihi, a)\n"
            "real (kind=8), dimension(ilo:ihi) :: a\n"
            "integer :: ilo, ihi\n"
            "do i = ilo, ihi\n"
            "  a(i) = i * 1.0d0\n"
            "enddo\n"
            "end subroutine s\n"
        )
        scope = self._run(source, "s", {"ilo": -2, "ihi": 2}, {"a": np.zeros(5)})
        assert np.array_equal(scope.arrays["a"].data, [-2.0, -1.0, 0.0, 1.0, 2.0])

    def test_out_of_bounds_read_raises(self):
        source = (
            "subroutine s(n, a)\n"
            "real (kind=8), dimension(1:n) :: a\n"
            "integer :: n\n"
            "a(1) = a(n + 1)\n"
            "end subroutine s\n"
        )
        with pytest.raises(InterpreterError, match="out of bounds"):
            self._run(source, "s", {"n": 3}, {"a": np.zeros(3)})

    def test_shape_mismatch_raises(self):
        source = (
            "subroutine s(n, a)\n"
            "real (kind=8), dimension(1:n) :: a\n"
            "integer :: n\n"
            "a(1) = 0.0d0\n"
            "end subroutine s\n"
        )
        with pytest.raises(InterpreterError, match="shape"):
            self._run(source, "s", {"n": 5}, {"a": np.zeros(3)})

    def test_integer_division_truncates_toward_zero(self):
        source = (
            "subroutine s(n, m, a)\n"
            "real (kind=8), dimension(1:3) :: a\n"
            "integer :: n, m\n"
            "m = n / 2\n"
            "a(1) = 1.0d0\n"
            "end subroutine s\n"
        )
        scope = self._run(source, "s", {"n": -3, "m": 0}, {"a": np.zeros(3)})
        assert scope.scalars["m"] == -1  # Python // would give -2

    def test_allocate_arrays_integer_valued(self):
        app = heat_mini_app()
        program = parse_source(app.source)
        buffers = allocate_arrays(program, app.driver, app.grid_scalars(5), seed=3)
        assert set(buffers) == {"uold", "unew"}
        for data in buffers.values():
            assert data.shape == (6, 6)
            assert np.array_equal(data, np.round(data))


# ---------------------------------------------------------------------------
# Translation bundles
# ---------------------------------------------------------------------------

class TestTranslate:
    def test_every_liftable_kernel_is_substituted(self, bundles):
        for app in mini_apps():
            bundle = bundles[app.name]
            assert len(bundle.translated) == app.expected_liftable, app.name
            assert len(bundle.fallbacks) == app.expected_fallback, app.name
            for tk in bundle.translated:
                assert tk.stencils
                assert tk.report.glue_code
                assert tk.verification_level is not None

    def test_manifest_structure(self, bundles):
        bundle = bundles["cloverleaf_mini"]
        manifest = bundle.manifest()
        assert manifest["application"] == "cloverleaf_mini"
        assert manifest["driver"] == "hydro"
        counts = manifest["counts"]
        assert counts["sites"] == counts["translated"] + counts["fallback"]
        assert counts["translated"] == 7
        assert sum(counts["demotion_reasons"].values()) == counts["fallback"]
        by_name = {k["name"]: k for k in manifest["kernels"]}
        entry = by_name["viscosity_kernel_loop0"]
        assert entry["procedure"] == "viscosity_kernel"
        assert entry["span"] == [0, 1]
        assert entry["stencils"][0]["output"] == "viscosity"
        assert set(entry["stencils"][0]["inputs"]) == {"xvel", "yvel"}
        # Manifest must be JSON-serialisable as-is.
        json.dumps(manifest)

    def test_write_artifacts(self, bundles, tmp_path):
        bundle = bundles["heat_mini"]
        written = bundle.write_artifacts(tmp_path)
        names = {path.name for path in written}
        assert "manifest.json" in names
        assert "heat_step_loop0_glue.f90" in names
        assert "heat_step_loop0_0.halide.cpp" in names
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        for kernel in manifest["kernels"]:
            for artifact in kernel["artifacts"]["halide_cpp"]:
                assert (tmp_path / artifact).exists()
            assert (tmp_path / kernel["artifacts"]["fortran_glue"]).exists()

    def test_warm_cache_rerun_skips_all_synthesis(self):
        app = heat_mini_app()
        cache = SynthesisCache(None)
        options = PipelineOptions(**FAST_OPTIONS)
        cold = translate_application(app, options, cache=cache)
        assert cold.cache_misses == app.expected_liftable
        warm = translate_application(app, options, cache=cache)
        assert warm.cache_misses == 0
        assert warm.cache_hits == app.expected_liftable
        assert [report_signature(tk.report) for tk in warm.translated] == [
            report_signature(tk.report) for tk in cold.translated
        ]
        assert warm.manifest() == cold.manifest()

    def test_pool_lift_matches_sequential(self, bundles):
        app = heat_mini_app()
        pooled = translate_application(
            app, PipelineOptions(**FAST_OPTIONS), pool_size=2
        )
        sequential = bundles[app.name]
        assert pooled.manifest() == sequential.manifest()
        assert [report_signature(tk.report) for tk in pooled.translated] == [
            report_signature(tk.report) for tk in sequential.translated
        ]

    def test_raw_source_requires_driver(self):
        with pytest.raises(ValueError, match="driver"):
            translate_application(heat_mini_app().source)


# ---------------------------------------------------------------------------
# Differential execution
# ---------------------------------------------------------------------------

class TestDifferentialExecution:
    def test_all_apps_bitwise_identical_on_all_grids(self, bundles):
        for app in mini_apps():
            assert len(app.grids) >= 3
            report = differential_check(bundles[app.name], seed=11)
            assert len(report.runs) == len(app.grids)
            for run in report.runs:
                assert run.identical, (
                    f"{app.name} grid {run.grid}: {run.mismatched_arrays} "
                    f"max diff {run.max_abs_diff}"
                )
            assert report.all_identical

    def test_both_backends_agree(self, bundles):
        bundle = bundles["heat_mini"]
        for backend in ("codegen", "interp"):
            report = differential_check(bundle, grids=(9,), backend=backend)
            assert report.all_identical, backend

    def test_degenerate_grid_is_identical(self, bundles):
        # n=1: the stencil interiors are empty, only fallback loops run.
        report = differential_check(bundles["heat_mini"], grids=(1,))
        assert report.all_identical

    def test_translated_run_mutates_passed_buffers(self, bundles):
        bundle = bundles["heat_mini"]
        scalars = heat_mini_app().grid_scalars(6)
        arrays = allocate_arrays(bundle.program, bundle.driver, scalars, seed=5)
        before = arrays["unew"].copy()
        scope, seconds = run_application(bundle, scalars, arrays, translated=True)
        assert seconds >= 0.0
        assert not np.array_equal(arrays["unew"], before)
        assert scope.arrays["unew"].data is arrays["unew"]

    def test_measured_schedules_stay_identical(self):
        options = PipelineOptions(
            verifier_environments=1,
            measure=True,
            measure_budget=4,
            measure_points=1024,
        )
        bundle = translate_application(heat_mini_app(), options)
        schedules = [tk.schedule for tk in bundle.translated]
        assert any(schedule is not None for schedule in schedules)
        report = differential_check(bundle, grids=(8, 12))
        assert report.all_identical

    def test_report_json_roundtrip(self, bundles):
        report = differential_check(bundles["heat_mini"], grids=(6,))
        payload = report.as_json()
        assert payload["application"] == "heat_mini"
        assert payload["substituted_kernels"] == 2
        assert payload["fallback_sites"] == 1
        json.dumps(payload)

    def test_raw_source_bundle_with_custom_grid_scalars(self):
        source = (
            "subroutine doubler(n, a, b)\n"
            "real (kind=8), dimension(1:n) :: a\n"
            "real (kind=8), dimension(1:n) :: b\n"
            "integer :: n\n"
            "do i = 2, n-1\n"
            "  a(i) = b(i-1) + b(i+1)\n"
            "enddo\n"
            "end subroutine doubler\n"
        )
        bundle = translate_application(
            source, PipelineOptions(**FAST_OPTIONS), driver="doubler"
        )
        assert len(bundle.translated) == 1
        report = differential_check(
            bundle, grids=(5, 9, 14), grid_scalars=lambda n: {"n": n}
        )
        assert report.all_identical
        with pytest.raises(ValueError, match="grid_scalars"):
            differential_check(bundle, grids=(5,))

    def test_live_scalar_temporary_demotes_site_to_fallback(self):
        # The rotation temporary's post-loop value is read after the
        # nest; substitution would drop it, so the scan must fall back.
        source = (
            "subroutine kern(ilo, ihi, a, b)\n"
            "real (kind=8), dimension(ilo:ihi) :: a\n"
            "real (kind=8), dimension(ilo:ihi) :: b\n"
            "integer :: ilo, ihi\n"
            "t = a(ilo)\n"
            "do i = ilo+1, ihi\n"
            "  q = a(i)\n"
            "  b(i) = q + t\n"
            "  t = q\n"
            "enddo\n"
            "b(ilo) = t\n"
            "end subroutine kern\n"
        )
        scan = scan_application(parse_source(source))
        assert not scan.sites[0].liftable
        assert "scalar temporaries live" in scan.sites[0].reasons[0]
        bundle = translate_application(
            source, PipelineOptions(**FAST_OPTIONS), driver="kern"
        )
        report = differential_check(
            bundle, grids=(6, 9, 12), grid_scalars=lambda n: {"ilo": 0, "ihi": n}
        )
        assert report.all_identical

    def test_redefined_scalar_temporary_lifts_under_precise_liveness(self):
        """The accelerate kernel is the liveness pass's headline win.

        ``stepbymass`` is mentioned after the first loop nest — but only
        to be *redefined* before any read, so its post-loop value is
        unobservable.  The old mention-based heuristic demoted the site;
        the dataflow pass (:mod:`repro.analysis.liveness`) proves it
        dead and the site lifts.
        """
        app = cloverleaf_mini_app()
        program = parse_source(app.source)
        precise = scan_application(program)
        legacy = scan_application(program, precise_liveness=False)
        precise_by_name = {site.name: site for site in precise.sites}
        legacy_by_name = {site.name: site for site in legacy.sites}
        assert precise_by_name["accelerate_loop0"].liftable
        assert not legacy_by_name["accelerate_loop0"].liftable
        assert any(
            "scalar temporaries live" in reason and "stepbymass" in reason
            for reason in legacy_by_name["accelerate_loop0"].reasons
        )
        # Everything the heuristic lifted, the dataflow pass still lifts.
        legacy_lifted = {s.name for s in legacy.liftable_sites}
        precise_lifted = {s.name for s in precise.liftable_sites}
        assert legacy_lifted < precise_lifted

    def test_accelerate_sites_substitute_and_run_bitwise(self, bundles):
        bundle = bundles["cloverleaf_mini"]
        lifted = {tk.name for tk in bundle.translated}
        assert "accelerate_loop0" in lifted
        assert "accelerate_loop1" in lifted

    def test_rotation_kernel_substitutes_with_dead_locals(self):
        # Hand-optimised rotation scalars that die with the activation
        # must neither block substitution nor fail the differential
        # comparison (only parameter scalars are observable at return).
        source = (
            "subroutine kern(ilo, ihi, jlo, jhi, a, b)\n"
            "real (kind=8), dimension(ilo:ihi, jlo:jhi) :: a\n"
            "real (kind=8), dimension(ilo:ihi, jlo:jhi) :: b\n"
            "integer :: ilo, ihi, jlo, jhi\n"
            "do j = jlo, jhi\n"
            "  t = b(ilo, j)\n"
            "  do i = ilo+1, ihi\n"
            "    q = b(i, j)\n"
            "    a(i, j) = q + t\n"
            "    t = q\n"
            "  enddo\n"
            "enddo\n"
            "end subroutine kern\n"
        )
        bundle = translate_application(
            source, PipelineOptions(**FAST_OPTIONS), driver="kern"
        )
        assert len(bundle.translated) == 1
        report = differential_check(
            bundle,
            grids=(5, 8, 12),
            grid_scalars=lambda n: {"ilo": 0, "ihi": n, "jlo": 0, "jhi": n},
        )
        assert report.all_identical

    def test_scalar_parameter_results_are_compared(self):
        # A driver computing a scalar parameter from substituted-kernel
        # output exercises the scalar half of the differential check.
        source = (
            "subroutine step(ilo, ihi, a, b)\n"
            "real (kind=8), dimension(ilo:ihi) :: a\n"
            "real (kind=8), dimension(ilo:ihi) :: b\n"
            "integer :: ilo, ihi\n"
            "do i = ilo+1, ihi-1\n"
            "  a(i) = b(i-1) + b(i+1)\n"
            "enddo\n"
            "end subroutine step\n"
            "subroutine driver(ilo, ihi, probe, a, b)\n"
            "real (kind=8), dimension(ilo:ihi) :: a\n"
            "real (kind=8), dimension(ilo:ihi) :: b\n"
            "integer :: ilo, ihi\n"
            "real (kind=8) :: probe\n"
            "call step(ilo, ihi, a, b)\n"
            "probe = a(ilo+1)\n"
            "end subroutine driver\n"
        )
        bundle = translate_application(
            source, PipelineOptions(**FAST_OPTIONS), driver="driver"
        )
        assert len(bundle.translated) == 1
        report = differential_check(
            bundle,
            grids=(6, 9, 13),
            grid_scalars=lambda n: {"ilo": 0, "ihi": n, "probe": 0.0},
        )
        assert report.all_identical

    def test_mini_app_lookup(self):
        assert mini_app("cloverleaf_mini").driver == "hydro"
        with pytest.raises(KeyError):
            mini_app("nope")
