"""Emission of C++ Halide source text (the paper's Figure 1(d)).

STNG produces a small C++ program that, when compiled and executed,
writes an object file and header for the lifted stencil.  We reproduce
the text generation: given a :class:`~repro.halide.lang.Func` and its
schedule, ``emit_cpp`` returns the C++ source a user would feed to the
real Halide toolchain.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.halide.lang import (
    BinOp,
    Call,
    Const,
    Expr,
    Func,
    FuncRef,
    ImageRef,
    Param,
    Var,
)
from repro.halide.schedule import Schedule


class LiteralError(ValueError):
    """Raised when a constant has no valid C++ literal spelling."""


def cpp_double_literal(value: float) -> str:
    """Round-trippable C++ ``double`` literal for ``value``.

    Python's ``repr`` is shortest-round-trip for IEEE doubles but emits
    text like ``1e-05`` (no decimal point) and ``inf``/``nan`` (not C++
    at all).  This printer guarantees the result parses as a C++
    floating literal that reads back bit-identically: a decimal point is
    forced when the mantissa has none, and non-finite values are
    rejected with a clear error instead of producing invalid source.
    """
    value = float(value)
    if not math.isfinite(value):
        raise LiteralError(
            f"cannot emit non-finite constant {value!r} as a C++ double literal"
        )
    text = repr(value)
    if "e" in text:
        mantissa, exponent = text.split("e", 1)
        if "." not in mantissa:
            mantissa += ".0"
        return f"{mantissa}e{exponent}"
    if "." not in text:
        text += ".0"
    return text


def _expr_to_cpp(expr: Expr) -> str:
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, float):
            return cpp_double_literal(value)
        return str(value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Param):
        return expr.name
    if isinstance(expr, BinOp):
        return f"({_expr_to_cpp(expr.left)} {expr.op} {_expr_to_cpp(expr.right)})"
    if isinstance(expr, Call):
        args = ", ".join(_expr_to_cpp(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ImageRef):
        args = ", ".join(_expr_to_cpp(i) for i in expr.indices)
        return f"{expr.image.name}({args})"
    if isinstance(expr, FuncRef):
        args = ", ".join(_expr_to_cpp(i) for i in expr.indices)
        return f"{expr.func.name}({args})"
    raise TypeError(f"cannot emit C++ for {expr!r}")


def _schedule_lines(func: Func, schedule: Schedule) -> List[str]:
    lines: List[str] = []
    vars_ = [v.name for v in func.vars]
    if schedule.gpu:
        bx, by = schedule.gpu_block
        if len(vars_) >= 2:
            lines.append(
                f"    func.gpu_tile({vars_[0]}, {vars_[1]}, "
                f"{vars_[0]}o, {vars_[1]}o, {vars_[0]}i, {vars_[1]}i, {bx}, {by});"
            )
        else:
            lines.append(f"    func.gpu_blocks({vars_[0]});")
        return lines
    if schedule.tile_sizes and any(schedule.tile_sizes) and len(vars_) >= 2:
        tx = schedule.tile_sizes[0] or 32
        ty = schedule.tile_sizes[1] or 8
        lines.append(
            f"    func.tile({vars_[0]}, {vars_[1]}, "
            f"{vars_[0]}o, {vars_[1]}o, {vars_[0]}i, {vars_[1]}i, {tx}, {ty});"
        )
    if schedule.parallel_dim is not None and vars_:
        parallel_var = vars_[min(schedule.parallel_dim, len(vars_) - 1)]
        lines.append(f"    func.parallel({parallel_var});")
    if schedule.vector_width > 1 and vars_:
        lines.append(f"    func.vectorize({vars_[0]}, {schedule.vector_width});")
    if schedule.unroll > 1 and vars_:
        lines.append(f"    func.unroll({vars_[0]}, {schedule.unroll});")
    return lines


def emit_cpp(func: Func, output_name: str, schedule: Optional[Schedule] = None) -> str:
    """Generate the C++ Halide generator program for one lifted stencil."""
    if func.definition is None:
        raise ValueError("cannot emit C++ for an undefined Func")
    schedule = schedule or func.schedule
    inputs = func.inputs()
    params = func.params()
    lines: List[str] = []
    lines.append("#include \"Halide.h\"")
    lines.append("using namespace Halide;")
    lines.append("")
    lines.append("int main() {")
    for image in inputs:
        lines.append(
            f"    ImageParam {image.name}(type_of<double>(), {image.dimensions});"
        )
    for param in params:
        lines.append(f"    Param<double> {param.name};")
    var_decl = ", ".join(v.name for v in func.vars)
    lines.append(f"    Func func; Var {var_decl};")
    index = ", ".join(v.name for v in func.vars)
    lines.append(f"    func({index}) = {_expr_to_cpp(func.definition)};")
    schedule_lines = _schedule_lines(func, schedule)
    if schedule_lines:
        lines.append("    // schedule (from autotuning)")
        lines.extend(schedule_lines)
    args = ", ".join([image.name for image in inputs] + [param.name for param in params])
    lines.append(f"    func.compile_to_file(\"{output_name}\", {{{args}}});")
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"
