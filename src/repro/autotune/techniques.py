"""Search techniques combined by the bandit tuner.

OpenTuner's strength is running an *ensemble* of techniques — random
search, greedy mutation (hill climbing), pattern search over individual
parameters — and shifting evaluations toward whichever technique has
been producing improvements.  Each technique here exposes a single
``propose`` method; the bandit in :mod:`repro.autotune.tuner` decides
which technique gets to propose next.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.autotune.space import TILE_CHOICES, UNROLL_CHOICES, VECTOR_CHOICES, ScheduleSpace
from repro.halide.schedule import Schedule


class Technique:
    """Base class of search techniques."""

    name = "technique"

    def propose(
        self,
        space: ScheduleSpace,
        best: Optional[Schedule],
        rng: random.Random,
    ) -> Schedule:
        raise NotImplementedError


class RandomSearch(Technique):
    """Propose uniformly random schedules."""

    name = "random"

    def propose(self, space: ScheduleSpace, best: Optional[Schedule], rng: random.Random) -> Schedule:
        return space.random_schedule(rng)


class GreedyMutation(Technique):
    """Propose single-coordinate mutations of the best schedule so far."""

    name = "greedy-mutation"

    def propose(self, space: ScheduleSpace, best: Optional[Schedule], rng: random.Random) -> Schedule:
        if best is None:
            return space.sensible_schedule()
        return space.mutate(best, rng)


class PatternSearch(Technique):
    """Sweep one parameter at a time around the incumbent (coordinate descent)."""

    name = "pattern-search"

    def __init__(self) -> None:
        self._queue: List[Schedule] = []

    def propose(self, space: ScheduleSpace, best: Optional[Schedule], rng: random.Random) -> Schedule:
        if best is None:
            return space.sensible_schedule()
        if not self._queue:
            self._queue = self._neighbours(space, best)
        return self._queue.pop() if self._queue else space.mutate(best, rng)

    def _neighbours(self, space: ScheduleSpace, best: Schedule) -> List[Schedule]:
        neighbours: List[Schedule] = []
        for width in VECTOR_CHOICES:
            if width != best.vector_width:
                neighbours.append(best.with_vectorize(width))
        for factor in UNROLL_CHOICES:
            if factor != best.unroll:
                neighbours.append(best.with_unroll(factor))
        tiles = list(best.tile_sizes or (0,) * space.dimensions)
        for dim in range(len(tiles)):
            for size in (0, 16, 32, 64):
                if tiles[dim] != size:
                    candidate = list(tiles)
                    candidate[dim] = size
                    neighbours.append(best.with_tiles(tuple(candidate)))
        for dim in range(space.dimensions):
            if best.parallel_dim != dim:
                neighbours.append(best.with_parallel(dim))
        order = list(best.dim_order or range(space.dimensions))
        for a in range(len(order) - 1):
            swapped = list(order)
            swapped[a], swapped[a + 1] = swapped[a + 1], swapped[a]
            if swapped != order:
                neighbours.append(best.with_order(tuple(swapped)))
        return neighbours


DEFAULT_TECHNIQUES: Tuple[Callable[[], Technique], ...] = (
    RandomSearch,
    GreedyMutation,
    PatternSearch,
)
