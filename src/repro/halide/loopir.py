"""An explicit loop-nest IR for scheduled stencil execution.

A :class:`LoopNest` is what a ``(Func, Schedule)`` pair *means*
operationally: tiling, dimension reordering, unrolling and parallel
chunking become actual nested :class:`Loop` nodes, and the vectorised
innermost band becomes a :class:`ComputeSpan` leaf that evaluates one
vector-width slab of output points at a time.  The lowering pass lives
in :mod:`repro.halide.lower`; this module defines the IR nodes, their
pretty printer, and the **tiled-NumPy interpreter backend** that walks
the tree directly.  The second backend — generated Python compiled with
``compile()`` in the style of :mod:`repro.compile` — also lives in
:mod:`repro.halide.lower`.

Both backends are bit-identical to the schedule-blind reference
``repro.halide.executor.realize`` for every valid schedule: a schedule
reorders *traversal*, never the arithmetic performed per output cell,
so the buffers must match exactly (this is checked differentially by
the measured autotuner and the property test-suite).

Loop bounds are symbolic in the output domain (a nest is lowered once
and executed over any domain): :class:`DomainLo`/:class:`DomainHi`
name the inclusive domain bounds of an axis, :class:`LoopVar` names an
enclosing loop's current value, and :class:`Shifted`/:class:`Clamped`
build the ``min(tile_start + tile - 1, hi)`` bounds that tiling needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.halide.executor import Domain, realize_box
from repro.halide.lang import Func, HalideError
from repro.halide.schedule import Schedule


# ---------------------------------------------------------------------------
# Symbolic loop bounds
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DomainLo:
    """Inclusive lower bound of one output-domain axis."""

    axis: int


@dataclass(frozen=True)
class DomainHi:
    """Inclusive upper bound of one output-domain axis."""

    axis: int


@dataclass(frozen=True)
class LoopVar:
    """The current value of an enclosing loop variable."""

    name: str


@dataclass(frozen=True)
class Shifted:
    """``base + offset`` (offset is a compile-time constant)."""

    base: "BoundExpr"
    offset: int


@dataclass(frozen=True)
class Clamped:
    """``min(left, right)`` — tile upper bounds clamp to the domain."""

    left: "BoundExpr"
    right: "BoundExpr"


BoundExpr = Union[DomainLo, DomainHi, LoopVar, Shifted, Clamped]


def eval_bound(bound: BoundExpr, lows: Sequence[int], highs: Sequence[int], env: Mapping[str, int]) -> int:
    """Evaluate a symbolic bound for a concrete domain and loop environment."""
    if isinstance(bound, DomainLo):
        return lows[bound.axis]
    if isinstance(bound, DomainHi):
        return highs[bound.axis]
    if isinstance(bound, LoopVar):
        return env[bound.name]
    if isinstance(bound, Shifted):
        return eval_bound(bound.base, lows, highs, env) + bound.offset
    if isinstance(bound, Clamped):
        return min(
            eval_bound(bound.left, lows, highs, env),
            eval_bound(bound.right, lows, highs, env),
        )
    raise HalideError(f"unknown bound expression {bound!r}")


def bound_source(bound: BoundExpr) -> str:
    """Render a symbolic bound as a Python expression (codegen backend).

    Domain bounds are the ``_lo{axis}``/``_hi{axis}`` locals of the
    generated function; loop variables appear under their own names.
    """
    if isinstance(bound, DomainLo):
        return f"_lo{bound.axis}"
    if isinstance(bound, DomainHi):
        return f"_hi{bound.axis}"
    if isinstance(bound, LoopVar):
        return bound.name
    if isinstance(bound, Shifted):
        if bound.offset == 0:
            return bound_source(bound.base)
        sign = "+" if bound.offset >= 0 else "-"
        return f"({bound_source(bound.base)} {sign} {abs(bound.offset)})"
    if isinstance(bound, Clamped):
        return f"min({bound_source(bound.left)}, {bound_source(bound.right)})"
    raise HalideError(f"unknown bound expression {bound!r}")


def bound_pretty(bound: BoundExpr) -> str:
    """Human-readable bound text for :meth:`LoopNest.pretty`."""
    if isinstance(bound, DomainLo):
        return f"lo{bound.axis}"
    if isinstance(bound, DomainHi):
        return f"hi{bound.axis}"
    if isinstance(bound, LoopVar):
        return bound.name
    if isinstance(bound, Shifted):
        sign = "+" if bound.offset >= 0 else "-"
        return f"{bound_pretty(bound.base)} {sign} {abs(bound.offset)}"
    if isinstance(bound, Clamped):
        return f"min({bound_pretty(bound.left)}, {bound_pretty(bound.right)})"
    raise HalideError(f"unknown bound expression {bound!r}")


# ---------------------------------------------------------------------------
# Loop-nest nodes
# ---------------------------------------------------------------------------

@dataclass
class ComputeSpan:
    """The innermost band: compute ``unroll`` consecutive vector spans.

    ``var`` holds the first span's start; span ``k`` covers output
    coordinates ``[var + k*width, min(var + (k+1)*width - 1, upper)]``
    along ``axis``.  ``width == 1`` is the scalar (default-schedule)
    case.
    """

    axis: int
    var: str
    width: int
    unroll: int
    upper: BoundExpr


@dataclass
class Loop:
    """One loop of the nest.

    ``kind`` records what the schedule made of this loop: ``"serial"``
    (plain), ``"tile"`` (a strip-mined tile loop stepping by the tile
    size), ``"parallel"`` (its range is executed as ``chunks``
    contiguous, step-aligned chunks — the structure a work-sharing
    runtime would hand to worker threads), ``"vector"``/``"unrolled"``
    (the innermost strip loop stepping by ``width * unroll``).
    """

    var: str
    axis: int
    lower: BoundExpr
    upper: BoundExpr
    step: int
    kind: str
    body: Union["Loop", ComputeSpan]
    chunks: int = 1


@dataclass
class LoopNest:
    """A fully lowered (Func, Schedule) pair: concrete nested loops."""

    func: Func
    schedule: Schedule
    root: Union[Loop, ComputeSpan]
    point_vars: Dict[int, str] = field(default_factory=dict)

    @property
    def dimensions(self) -> int:
        return self.func.dimensions

    def loops(self) -> List[Loop]:
        """All loops, outermost first."""
        result: List[Loop] = []
        node = self.root
        while isinstance(node, Loop):
            result.append(node)
            node = node.body
        return result

    def pretty(self) -> str:
        """Render the nest as indented pseudo-loops (docs and debugging)."""
        lines: List[str] = [f"nest {self.func.name} [{self.schedule.describe()}]"]
        node: Union[Loop, ComputeSpan] = self.root
        depth = 1
        while isinstance(node, Loop):
            step = f" step {node.step}" if node.step != 1 else ""
            chunks = f" chunks={node.chunks}" if node.kind == "parallel" else ""
            lines.append(
                "  " * depth
                + f"{node.kind} {node.var} = {bound_pretty(node.lower)} .. "
                + f"{bound_pretty(node.upper)}{step}{chunks}"
            )
            depth += 1
            node = node.body
        lines.append(
            "  " * depth
            + f"compute {self.func.name}[...] span({node.var}, width={node.width}, "
            + f"unroll={node.unroll})"
        )
        return "\n".join(lines)


def chunk_ranges(lower: int, upper: int, step: int, chunks: int) -> List[Tuple[int, int]]:
    """Split an inclusive stepped range into contiguous, step-aligned chunks.

    Alignment matters: chunk boundaries fall on multiples of ``step``
    from ``lower`` so the strip/tile pattern of an enclosed loop is the
    same as in the unchunked range, keeping execution order — and hence
    results — identical to serial execution.
    """
    if upper < lower:
        return []
    iterations = (upper - lower) // step + 1
    per_chunk = -(-iterations // max(1, chunks)) * step
    ranges: List[Tuple[int, int]] = []
    start = lower
    while start <= upper:
        end = min(start + per_chunk - step, upper)
        ranges.append((start, end))
        start = start + per_chunk
    return ranges


# ---------------------------------------------------------------------------
# Tiled-NumPy interpreter backend
# ---------------------------------------------------------------------------

def execute_loop_nest(
    nest: LoopNest,
    domain: Domain,
    inputs: Mapping[str, np.ndarray],
    input_origins: Optional[Mapping[str, Tuple[int, ...]]] = None,
    params: Optional[Mapping[str, float]] = None,
    strict_bounds: bool = False,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Execute a lowered loop nest by walking the tree (interpreter backend).

    Every :class:`ComputeSpan` evaluates one vector span as a numpy slab
    through :func:`repro.halide.executor.realize_box` — the same
    evaluation code the schedule-blind reference uses over the whole
    domain — so results are bit-identical to ``realize`` by
    construction.
    """
    func = nest.func
    if len(domain) != func.dimensions:
        raise HalideError(
            f"domain rank {len(domain)} does not match Func rank {func.dimensions}"
        )
    input_origins = dict(input_origins or {})
    params = dict(params or {})
    lows = [lo for lo, _hi in domain]
    highs = [hi for _lo, hi in domain]
    shape = tuple(hi - lo + 1 for lo, hi in domain)
    if out is None:
        out = np.empty(shape, dtype=float)

    env: Dict[str, int] = {}

    def run(node: Union[Loop, ComputeSpan]) -> None:
        if isinstance(node, ComputeSpan):
            _compute_spans(node, env)
            return
        lower = eval_bound(node.lower, lows, highs, env)
        upper = eval_bound(node.upper, lows, highs, env)
        if node.kind == "parallel":
            for chunk_lo, chunk_hi in chunk_ranges(lower, upper, node.step, node.chunks):
                for value in range(chunk_lo, chunk_hi + 1, node.step):
                    env[node.var] = value
                    run(node.body)
        else:
            for value in range(lower, upper + 1, node.step):
                env[node.var] = value
                run(node.body)

    def _compute_spans(span: ComputeSpan, env: Mapping[str, int]) -> None:
        band_hi = eval_bound(span.upper, lows, highs, env)
        for k in range(span.unroll):
            start = env[span.var] + k * span.width
            if start > band_hi:
                break
            end = min(start + span.width - 1, band_hi)
            box: List[Tuple[int, int]] = []
            index: List[object] = []
            for axis in range(func.dimensions):
                if axis == span.axis:
                    box.append((start, end))
                    index.append(slice(start - lows[axis], end - lows[axis] + 1))
                else:
                    coord = env[nest.point_vars[axis]]
                    box.append((coord, coord))
                    index.append(coord - lows[axis])
            slab = realize_box(func, box, inputs, input_origins, params, strict_bounds)
            out[tuple(index)] = slab.reshape(-1)

    run(nest.root)
    return out
