"""Conditional-stencil synthesis experiments (§6.6, Figure 5).

The released STNG prototype does not lift stencils with conditionals;
§6.6 measures how much harder synthesis would become by hand-modifying
the SKETCH problem of one benchmark (akl83) with two conditional
grammars: *data-dependent* conditionals (branching on an input value)
and *location-dependent* conditionals (branching on the index, i.e.
boundary conditions).

We reproduce the experiment at the same level: given a kernel whose
body is ``if cond then out = expr1 else out = expr2``, we build the
enlarged candidate space corresponding to each grammar of Figure 5 and
run CEGIS over it.  The guard of the winning candidate becomes the
``guard`` field of the postcondition's quantified constraints, and the
measured control bits / synthesis-time ratios are what the conditionals
benchmark reports.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ir import nodes as ir
from repro.ir.analysis import input_arrays, output_arrays
from repro.predicates.language import Bound, OutEq, Postcondition, QuantifiedConstraint
from repro.symbolic.expr import Expr, call, cell, const, sym
from repro.vcgen.hoare import CandidateSummary


_COMPARISONS = ("le", "ge", "lt", "gt", "eq", "ne")


@dataclass
class ConditionalGrammar:
    """One of the two conditional grammars of Figure 5."""

    name: str  # "data" or "location"
    comparisons: Tuple[str, ...] = _COMPARISONS
    offset_range: Tuple[int, ...] = (-1, 0, 1)
    constant_range: Tuple[int, ...] = (0, 1, 2)

    def control_bits(self, kernel: ir.Kernel, base_bits: int) -> int:
        """Control bits for the enlarged sketch (base problem + guard holes)."""
        extra = math.log2(len(self.comparisons))
        if self.name == "data":
            arrays = max(len(input_arrays(kernel)), 1)
            # array choice + per-dimension offsets + RHS (constant or float input)
            extra += math.log2(arrays)
            extra += 2 * math.log2(len(self.offset_range))
            float_inputs = sum(1 for d in kernel.scalars if d.scalar_type != "integer")
            extra += math.log2(max(len(self.constant_range) + float_inputs, 2))
        else:
            # index variable choice + integer constant / integer input RHS
            extra += math.log2(2)
            int_inputs = sum(1 for d in kernel.scalars if d.scalar_type == "integer")
            extra += math.log2(max(len(self.constant_range) + int_inputs, 2))
        # Guards appear in the postcondition and in every invariant unknown,
        # mirroring how the hand-modified SKETCH problem grows.
        return int(round(base_bits + extra * 3))

    # ------------------------------------------------------------------
    def enumerate_guards(self, kernel: ir.Kernel, rank: int) -> Iterator[Expr]:
        """Enumerate guard expressions of this grammar.

        Guards are encoded as calls ``cmp(lhs, rhs)`` with ``cmp`` in
        ``lt/le/gt/ge/eq/ne`` so they can be attached to
        :class:`QuantifiedConstraint` and evaluated by the predicate
        evaluator.
        """
        if self.name == "data":
            arrays = input_arrays(kernel)
            float_inputs = [d.name for d in kernel.scalars if d.scalar_type != "integer"]
            offsets = self.offset_range
            for array in arrays:
                for off in itertools.product(offsets, repeat=rank):
                    lhs = cell(array, *[sym(f"v{d}") + off[d] for d in range(rank)])
                    rhs_options: List[Expr] = [const(c) for c in self.constant_range]
                    rhs_options.extend(sym(name) for name in float_inputs)
                    for cmp in self.comparisons:
                        for rhs in rhs_options:
                            yield call(cmp, lhs, rhs)
        else:
            int_inputs = [d.name for d in kernel.scalars if d.scalar_type == "integer"]
            for dim in range(rank):
                lhs = sym(f"v{dim}")
                rhs_options = [const(c) for c in self.constant_range]
                rhs_options.extend(sym(name) for name in int_inputs)
                for cmp in self.comparisons:
                    for rhs in rhs_options:
                        yield call(cmp, lhs, rhs)


DATA_DEPENDENT = ConditionalGrammar(name="data")
LOCATION_DEPENDENT = ConditionalGrammar(name="location")


@dataclass
class ConditionalSynthesisResult:
    """Outcome of one conditional-lifting experiment."""

    grammar: str
    control_bits: int
    synthesis_time: float
    candidates_tried: int
    post: Optional[Postcondition]
    succeeded: bool


def _conditional_postcondition(
    branches: Tuple[QuantifiedConstraint, QuantifiedConstraint],
    guard: Expr,
) -> Postcondition:
    """Postcondition with a guarded conjunct per branch (then / else)."""
    then_c, else_c = branches
    negated = _negate_guard(guard)
    return Postcondition(
        (
            QuantifiedConstraint(then_c.bounds, then_c.out_eq, guard=guard),
            QuantifiedConstraint(else_c.bounds, else_c.out_eq, guard=negated),
        )
    )


_NEGATION = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}


def _negate_guard(guard: Expr) -> Expr:
    from repro.symbolic.expr import Call

    if isinstance(guard, Call) and guard.func in _NEGATION:
        return call(_NEGATION[guard.func], *guard.args)
    raise ValueError(f"cannot negate guard {guard!r}")


def synthesize_conditional(
    kernel: ir.Kernel,
    then_conjunct: QuantifiedConstraint,
    else_conjunct: QuantifiedConstraint,
    grammar: ConditionalGrammar,
    check_state_factory,
    base_control_bits: int,
    max_candidates: int = 20000,
) -> ConditionalSynthesisResult:
    """Search the guard grammar for a guard making the postcondition correct.

    ``check_state_factory`` produces (state, reference_state) pairs: the
    state before the kernel and the state after the reference execution
    of the conditional kernel; a candidate postcondition is accepted
    when it holds on every reference state.  This mirrors the paper's
    experiment, which measures synthesis cost rather than building the
    full conditional pipeline.
    """
    from repro.predicates.evaluate import PredicateEvalError, evaluate_postcondition

    start = time.perf_counter()
    rank = len(then_conjunct.out_eq.indices)
    states = check_state_factory()
    tried = 0
    for guard in grammar.enumerate_guards(kernel, rank):
        tried += 1
        if tried > max_candidates:
            break
        post = _conditional_postcondition((then_conjunct, else_conjunct), guard)
        ok = True
        for state in states:
            try:
                if not evaluate_postcondition(post, state):
                    ok = False
                    break
            except PredicateEvalError:
                ok = False
                break
        if ok:
            elapsed = time.perf_counter() - start
            return ConditionalSynthesisResult(
                grammar=grammar.name,
                control_bits=grammar.control_bits(kernel, base_control_bits),
                synthesis_time=elapsed,
                candidates_tried=tried,
                post=post,
                succeeded=True,
            )
    elapsed = time.perf_counter() - start
    return ConditionalSynthesisResult(
        grammar=grammar.name,
        control_bits=grammar.control_bits(kernel, base_control_bits),
        synthesis_time=elapsed,
        candidates_tried=tried,
        post=None,
        succeeded=False,
    )
