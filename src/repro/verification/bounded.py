"""Random and bounded-symbolic checking of candidate summaries."""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.ir import nodes as ir
from repro.ir.analysis import collect_loops, loop_counters
from repro.predicates.evaluate import (
    PredicateEvalError,
    evaluate_invariant,
    iterate_assignments,
)
from repro.predicates.language import Invariant
from repro.semantics.evalexpr import EvalError, eval_ir_expr, eval_sym_expr
from repro.semantics.exec import ExecutionError, loop_counter_values
from repro.semantics.state import ArrayValue, State, fresh_symbolic_array, require_int
from repro.symbolic.expr import Expr, sym
from repro.symbolic.interpreter import (
    SymbolicExecutionError,
    choose_integer_environments,
)
from repro.vcgen.hoare import CandidateSummary, VCClause, VCProblem


@dataclass
class VerificationResult:
    """Outcome of a (bounded) verification run."""

    ok: bool
    failed_clause: Optional[str] = None
    counterexample: Optional[State] = None
    states_checked: int = 0
    non_vacuous_checks: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def make_concrete_state(
    kernel: ir.Kernel,
    int_env: Dict[str, int],
    rng: random.Random,
    field_values: bool = True,
) -> State:
    """A random concrete initial state for the kernel.

    Integer inputs come from ``int_env``; float scalars and array cells
    are drawn from GF(7) when ``field_values`` is set (the synthesis
    float model), from small floats otherwise.
    """
    # Imported here to avoid a circular import with the synthesis package,
    # whose CEGIS driver depends on this verifier.
    from repro.synthesis.floatmodel import Mod7

    state = State(scalars=dict(int_env))

    def draw():
        if field_values:
            return Mod7(rng.randrange(7))
        return round(rng.uniform(-4, 4), 3)

    for decl in kernel.scalars:
        if decl.name in state.scalars:
            continue
        if decl.scalar_type == "integer":
            state.scalars[decl.name] = rng.randint(0, 4)
        else:
            state.scalars[decl.name] = draw()
    for decl in kernel.arrays:
        values: Dict[Tuple[int, ...], object] = {}

        def default(arr_name, idx, _values=values):
            if idx not in _values:
                _values[idx] = draw()
            return _values[idx]

        state.arrays[decl.name] = ArrayValue(decl.name, default=default)
    return state


# Snapshot cap for reachable-state collection; shared with the compiled
# collector (:mod:`repro.compile`).
REACHABLE_STATE_LIMIT = 512


class _ReachableStateCollector:
    """Execute a kernel concretely, recording the state at every cut point.

    Cut points are the program points where the VC's invariants are
    asserted: the top of every loop iteration, loop exit, and kernel
    exit.  The recorded states are genuine reachable states, so any VC
    clause that fails on one of them witnesses a real bug in the
    candidate summary.
    """

    def __init__(self, kernel: ir.Kernel, limit: int = REACHABLE_STATE_LIMIT):
        self.kernel = kernel
        self.limit = limit
        self.states: List[State] = []

    def run(self, state: State) -> List[State]:
        self._snapshot(state)
        self._execute(self.kernel.body, state)
        self._snapshot(state)
        return self.states

    def _snapshot(self, state: State) -> None:
        if len(self.states) < self.limit:
            self.states.append(state.copy())

    def _execute(self, stmt: ir.Stmt, state: State) -> None:
        from repro.semantics.exec import execute_statement

        if isinstance(stmt, ir.Block):
            for inner in stmt.statements:
                self._execute(inner, state)
            return
        if isinstance(stmt, ir.Loop):
            lower = require_int(eval_ir_expr(stmt.lower, state))
            upper = require_int(eval_ir_expr(stmt.upper, state))
            step = stmt.step
            if step == 0:
                raise ExecutionError("loop step must be non-zero")
            counter = lower
            while counter <= upper if step > 0 else counter >= upper:
                state.set_scalar(stmt.counter, counter)
                self._snapshot(state)
                self._execute(stmt.body, state)
                counter += step
            state.set_scalar(stmt.counter, counter)
            self._snapshot(state)
            return
        execute_statement(stmt, state)


class BoundedVerifier:
    """The checking hierarchy: random concrete search plus bounded symbolic proof.

    ``compile_options`` selects the evaluation backend: when enabled
    (the default) the kernel, the VC clauses and every candidate
    formula are closure-compiled once (:mod:`repro.compile`) and the
    checks run through the compiled forms; when disabled everything
    goes through the original tree-walking interpreters.  Both
    backends are bit-identical by construction.
    """

    def __init__(
        self,
        vc: VCProblem,
        environments: Optional[List[Dict[str, int]]] = None,
        num_environments: int = 2,
        env_high: int = 4,
        max_counter_combos: int = 600,
        seed: int = 0,
        compile_options=None,
    ):
        from repro.compile import CompileOptions, CompiledCollector, CompiledVC

        self.vc = vc
        self.kernel = vc.kernel
        self.seed = seed
        self.compile_options = CompileOptions.coerce(compile_options)
        self._compiled_vc = None
        self._compiled_collector = None
        if self.compile_options.enabled:
            self._compiled_vc = CompiledVC(vc, self.compile_options)
            self._compiled_collector = CompiledCollector(self.kernel, self.compile_options)
        # Deep loop nests (5-D kernels, multi-level tiling) explode the number
        # of counter combinations; scale the sampling budget down so the
        # per-kernel verification cost stays roughly constant.
        depth_penalty = 4 ** max(0, len(vc.loops) - 3)
        self.max_counter_combos = max(60, max_counter_combos // depth_penalty)
        if environments is None:
            try:
                environments = choose_integer_environments(
                    self.kernel, count=num_environments, seed=seed, high=env_high
                )
            except SymbolicExecutionError:
                environments = choose_integer_environments(
                    self.kernel, count=1, seed=seed, high=env_high + 2
                )
        self.environments = environments

    # ------------------------------------------------------------------
    # Tier 1: random concrete counterexample search
    # ------------------------------------------------------------------
    def quick_check(
        self,
        candidate: CandidateSummary,
        samples: int = 3,
        rng: Optional[random.Random] = None,
    ) -> Optional[State]:
        """Search for a counterexample among reachable concrete states."""
        rng = rng or random.Random(self.seed + 17)
        check = self._compiled_vc.check if self._compiled_vc is not None else self.vc.check
        for _ in range(samples):
            env = rng.choice(self.environments)
            initial = make_concrete_state(self.kernel, env, rng, field_values=True)
            try:
                if self._compiled_collector is not None:
                    states = self._compiled_collector.collect(initial.copy())
                else:
                    states = _ReachableStateCollector(self.kernel).run(initial.copy())
            except (ExecutionError, EvalError, TypeError):
                continue
            for state in states:
                failed = check(state, candidate)
                if failed is not None:
                    return state
        return None

    # ------------------------------------------------------------------
    # Tier 2: bounded symbolic verification
    # ------------------------------------------------------------------
    def verify(self, candidate: CandidateSummary, thorough: bool = True) -> VerificationResult:
        """Check every clause on every premise-canonical symbolic state."""
        states_checked = 0
        non_vacuous = 0
        environments = self.environments if thorough else self.environments[:1]
        clauses = (
            self._compiled_vc.clauses if self._compiled_vc is not None else self.vc.clauses
        )
        for env in environments:
            combos = list(self._counter_combinations(env))
            if len(combos) > self.max_counter_combos:
                rng = random.Random(self.seed + 99)
                combos = rng.sample(combos, self.max_counter_combos)
            for counters in combos:
                for clause in clauses:
                    compiled = self._compiled_vc is not None
                    source_clause = clause.clause if compiled else clause
                    state = self._premise_state(source_clause, candidate, env, counters)
                    if state is None:
                        continue
                    states_checked += 1
                    try:
                        if compiled:
                            # The compiled clause exposes the conclusion
                            # separately, so the premises are evaluated
                            # exactly once per state.
                            premised = clause.premises_hold(state, candidate)
                            if premised:
                                non_vacuous += 1
                            ok = (not premised) or clause.holds_after_premises(
                                state, candidate
                            )
                        else:
                            if clause._premises_hold(state, candidate):
                                non_vacuous += 1
                            ok = clause.holds(state, candidate)
                        if not ok:
                            return VerificationResult(
                                ok=False,
                                failed_clause=clause.name,
                                counterexample=state,
                                states_checked=states_checked,
                                non_vacuous_checks=non_vacuous,
                            )
                    except (PredicateEvalError, ExecutionError, EvalError, TypeError) as exc:
                        return VerificationResult(
                            ok=False,
                            failed_clause=f"{clause.name} (evaluation error: {exc})",
                            counterexample=state,
                            states_checked=states_checked,
                            non_vacuous_checks=non_vacuous,
                        )
        return VerificationResult(
            ok=True,
            states_checked=states_checked,
            non_vacuous_checks=non_vacuous,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _counter_combinations(self, env: Dict[str, int]) -> Iterator[Dict[str, int]]:
        """Enumerate loop-counter assignments within (and one past) their ranges."""
        loops = [info.loop for info in self.vc.loops]

        def rec(index: int, current: Dict[str, int]) -> Iterator[Dict[str, int]]:
            if index == len(loops):
                yield dict(current)
                return
            loop = loops[index]
            state = State(scalars={**env, **current})
            try:
                lower = require_int(eval_ir_expr(loop.lower, state))
                upper = require_int(eval_ir_expr(loop.upper, state))
            except (EvalError, TypeError, KeyError):
                # Bounds depend on a counter we have not fixed (or on missing
                # data); fall back to a small window around zero.
                lower, upper = 0, 2
            # Exact Fortran trip semantics: every value the body sees plus
            # the exit value.  The previous ``range(lower, upper + step + 1,
            # step)`` enumeration agreed with this for non-degenerate
            # positive-step loops, but dropped the exit state entirely for
            # loops whose range is empty by more than one step (``upper <
            # lower - step``) and walked the wrong direction for negative
            # steps.
            values = loop_counter_values(lower, upper, loop.step)
            for value in values:
                current[loop.counter] = value
                yield from rec(index + 1, current)
            current.pop(loop.counter, None)

        yield from rec(0, {})

    def _premise_state(
        self,
        clause: VCClause,
        candidate: CandidateSummary,
        env: Dict[str, int],
        counters: Dict[str, int],
    ) -> Optional[State]:
        """The most general symbolic state satisfying the clause's premises.

        Returns ``None`` when the premises are unsatisfiable for this
        counter assignment (the clause holds vacuously there) or when a
        satisfying state cannot be constructed.
        """
        state = State()
        state.scalars.update(env)
        state.scalars.update(counters)
        for decl in self.kernel.scalars:
            if decl.name not in state.scalars:
                state.scalars[decl.name] = sym(decl.name)
        for decl in self.kernel.arrays:
            state.arrays[decl.name] = fresh_symbolic_array(decl.name)

        for assumption in clause.assumptions:
            if assumption.kind == "pre":
                # Assumptions and non-degenerate bounds are properties of the
                # integer environment alone; reuse the clause's own check.
                continue
            if assumption.kind in {"loop_cond", "loop_exit"}:
                loop = assumption.loop
                assert loop is not None
                try:
                    counter = require_int(state.scalar(loop.counter))
                    upper = require_int(self._eval_loop_upper(loop, state))
                except (KeyError, EvalError, TypeError):
                    return None
                in_range = counter <= upper
                if assumption.kind == "loop_cond" and not in_range:
                    return None
                if assumption.kind == "loop_exit" and in_range:
                    return None
                continue
            if assumption.kind == "inv":
                invariant = candidate.invariants.get(assumption.loop_id or "")
                if invariant is None:
                    return None
                if not self._instantiate_invariant(invariant, state):
                    return None
        return state

    def _eval_loop_upper(self, loop: ir.Loop, state: State):
        if self.compile_options.enabled:
            from repro.compile import compile_ir_expr

            return compile_ir_expr(loop.upper, self.compile_options)(state)
        return eval_ir_expr(loop.upper, state)

    def _instantiate_invariant(self, invariant: Invariant, state: State) -> bool:
        """Mutate ``state`` so it satisfies ``invariant``; False when impossible."""
        if self.compile_options.enabled:
            from repro.compile import compile_invariant_instantiator

            return compile_invariant_instantiator(invariant, self.compile_options)(state)
        from repro.semantics.evalexpr import compare_values

        for ineq in invariant.inequalities:
            try:
                left = eval_sym_expr(sym(ineq.var), state, {})
                right = eval_sym_expr(ineq.upper, state, {})
                op = "<" if ineq.strict else "<="
                if not compare_values(op, left, right):
                    return False
            except (EvalError, TypeError):
                return False
        for eq in invariant.equalities:
            try:
                state.set_scalar(eq.var, eval_sym_expr(eq.rhs, state, {}))
            except (EvalError, TypeError):
                return False
        for conjunct in invariant.conjuncts:
            try:
                for assignment in iterate_assignments(conjunct.bounds, state, {}):
                    indices = tuple(
                        require_int(eval_sym_expr(i, state, assignment))
                        for i in conjunct.out_eq.indices
                    )
                    value = eval_sym_expr(conjunct.out_eq.rhs, state, assignment)
                    state.array(conjunct.out_eq.array).store(indices, value)
            except (PredicateEvalError, EvalError, TypeError):
                return False
        return True
