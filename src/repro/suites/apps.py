"""Bundled multi-kernel mini-applications (the whole-program workloads).

The paper's headline result is translating *applications* — CloverLeaf,
TERRA, NAS MG — not single loop nests: STNG finds every liftable kernel
in the program, replaces each with a generated Halide pipeline behind
Fortran glue, and runs the translated program.  The real applications
cannot be redistributed, so this module bundles small but structurally
faithful stand-ins: multi-procedure Fortran programs with a driver that
chains several stencil kernels (outputs of one feeding inputs of the
next) plus deliberately-unliftable loops that must fall back to plain
interpretation.

Initial data discipline: every array is filled with small *integer*
values and every kernel coefficient is dyadic (0.25, 0.5, 1.0), so all
intermediate values are exactly representable IEEE doubles.  Summary
synthesis may reassociate a kernel's sum, and reassociation only
preserves bit-identical floating-point results when the arithmetic is
exact — this is what lets the differential harness demand the
translated program match the reference interpreter *bit for bit*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class MiniApp:
    """One bundled multi-kernel program plus the harness metadata.

    ``driver`` names the entry procedure; its integer parameters are the
    grid bounds produced by :meth:`grid_scalars` and its array
    parameters are allocated by the harness
    (:func:`repro.application.interp.allocate_arrays`).
    """

    name: str
    suite: str
    source: str
    driver: str
    grids: Tuple[int, ...]
    expected_liftable: int
    expected_fallback: int
    notes: str = ""

    def grid_scalars(self, n: int) -> Dict[str, int]:
        """Driver bound arguments for an ``(n+1) x (n+1)`` grid."""
        return {"ilo": 0, "ihi": n, "jlo": 0, "jhi": n}


_CLOVERLEAF_MINI = """\
subroutine flux_calc(ilo, ihi, jlo, jhi, vol_flux, xvel)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: vol_flux
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: xvel
integer :: ilo, ihi
integer :: jlo, jhi
do j = jlo, jhi
  do i = ilo+1, ihi-1
    vol_flux(i, j) = 0.5d0*xvel(i-1, j) + 0.5d0*xvel(i+1, j)
  enddo
enddo
end subroutine flux_calc

subroutine ideal_gas(ilo, ihi, jlo, jhi, pressure, density0, energy)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: pressure
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: density0
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: energy
integer :: ilo, ihi
integer :: jlo, jhi
do j = jlo, jhi
  do i = ilo, ihi
    pressure(i, j) = 0.5d0*density0(i, j) + 0.25d0*energy(i, j)
  enddo
enddo
end subroutine ideal_gas

subroutine viscosity_kernel(ilo, ihi, jlo, jhi, viscosity, xvel, yvel)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: viscosity
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: xvel
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: yvel
integer :: ilo, ihi
integer :: jlo, jhi
do j = jlo+1, jhi-1
  do i = ilo+1, ihi-1
    viscosity(i, j) = xvel(i, j) + 0.25d0*xvel(i-1, j) + 0.25d0*xvel(i+1, j) + 0.25d0*yvel(i, j-1) + 0.25d0*yvel(i, j+1)
  enddo
enddo
end subroutine viscosity_kernel

subroutine advec_cell(ilo, ihi, jlo, jhi, density1, density0, vol_flux)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: density1
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: density0
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: vol_flux
integer :: ilo, ihi
integer :: jlo, jhi
do j = jlo+1, jhi-1
  do i = ilo+1, ihi-1
    density1(i, j) = density0(i, j) + 0.25d0*vol_flux(i-1, j) - 0.25d0*vol_flux(i+1, j)
  enddo
enddo
end subroutine advec_cell

subroutine update_energy(ilo, ihi, jlo, jhi, energy1, energy, pressure)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: energy1
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: energy
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: pressure
integer :: ilo, ihi
integer :: jlo, jhi
do j = jlo+1, jhi-1
  do i = ilo, ihi
    energy1(i, j) = energy(i, j) + 0.25d0*pressure(i, j-1) - 0.25d0*pressure(i, j+1)
  enddo
enddo
end subroutine update_energy

subroutine accelerate(ilo, ihi, jlo, jhi, xvel1, xvel, density0, yvel1, yvel, pressure)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: xvel1
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: xvel
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: density0
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: yvel1
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: yvel
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: pressure
real (kind=8) :: stepbymass
integer :: ilo, ihi
integer :: jlo, jhi
do j = jlo, jhi
  do i = ilo, ihi
    stepbymass = 0.5d0*density0(i, j)
    xvel1(i, j) = xvel(i, j) + stepbymass
  enddo
enddo
stepbymass = 0.0d0
do j = jlo, jhi
  do i = ilo, ihi
    stepbymass = 0.25d0*pressure(i, j)
    yvel1(i, j) = yvel(i, j) + stepbymass
  enddo
enddo
end subroutine accelerate

subroutine apply_floor(ilo, ihi, jlo, jhi, density1)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: density1
integer :: ilo, ihi
integer :: jlo, jhi
do j = jlo, jhi
  do i = ilo, ihi
    if (density1(i, j) < 0.0d0) then
      density1(i, j) = 0.0d0
    else
      density1(i, j) = density1(i, j) + 1.0d0
    endif
  enddo
enddo
end subroutine apply_floor

subroutine reverse_halo(ilo, ihi, jlo, jhi, work, density1, viscosity)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: work
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: density1
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: viscosity
integer :: ilo, ihi
integer :: jlo, jhi
do j = jhi, jlo, -1
  do i = ilo, ihi
    work(i, j) = density1(i, j) + viscosity(i, j)
  enddo
enddo
end subroutine reverse_halo

subroutine hydro(ilo, ihi, jlo, jhi, density0, density1, energy, energy1, pressure, viscosity, vol_flux, xvel, xvel1, yvel, yvel1, work)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: density0
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: density1
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: energy
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: energy1
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: pressure
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: viscosity
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: vol_flux
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: xvel
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: xvel1
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: yvel
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: yvel1
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: work
integer :: ilo, ihi
integer :: jlo, jhi
call flux_calc(ilo, ihi, jlo, jhi, vol_flux, xvel)
call ideal_gas(ilo, ihi, jlo, jhi, pressure, density0, energy)
call viscosity_kernel(ilo, ihi, jlo, jhi, viscosity, xvel, yvel)
call advec_cell(ilo, ihi, jlo, jhi, density1, density0, vol_flux)
call update_energy(ilo, ihi, jlo, jhi, energy1, energy, pressure)
call accelerate(ilo, ihi, jlo, jhi, xvel1, xvel, density0, yvel1, yvel, pressure)
call apply_floor(ilo, ihi, jlo, jhi, density1)
call reverse_halo(ilo, ihi, jlo, jhi, work, density1, viscosity)
end subroutine hydro
"""


_HEAT_MINI = """\
subroutine heat_step(ilo, ihi, jlo, jhi, unew, uold)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: unew
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: uold
integer :: ilo, ihi
integer :: jlo, jhi
do j = jlo+1, jhi-1
  do i = ilo+1, ihi-1
    unew(i, j) = 0.25d0*uold(i-1, j) + 0.25d0*uold(i+1, j) + 0.25d0*uold(i, j-1) + 0.25d0*uold(i, j+1)
  enddo
enddo
end subroutine heat_step

subroutine copy_back(ilo, ihi, jlo, jhi, uold, unew)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: uold
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: unew
integer :: ilo, ihi
integer :: jlo, jhi
do j = jlo+1, jhi-1
  do i = ilo+1, ihi-1
    uold(i, j) = unew(i, j)
  enddo
enddo
end subroutine copy_back

subroutine clamp_top(ilo, ihi, jlo, jhi, uold)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: uold
integer :: ilo, ihi
integer :: jlo, jhi
do j = jlo, jhi
  do i = ilo, ihi
    if (uold(i, j) > 2.0d0) then
      uold(i, j) = 2.0d0
    endif
  enddo
enddo
end subroutine clamp_top

subroutine heat_driver(ilo, ihi, jlo, jhi, uold, unew)
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: uold
real (kind=8), dimension(ilo:ihi, jlo:jhi) :: unew
integer :: ilo, ihi
integer :: jlo, jhi
call heat_step(ilo, ihi, jlo, jhi, unew, uold)
call copy_back(ilo, ihi, jlo, jhi, uold, unew)
call clamp_top(ilo, ihi, jlo, jhi, uold)
call heat_step(ilo, ihi, jlo, jhi, unew, uold)
end subroutine heat_driver
"""


def cloverleaf_mini_app() -> MiniApp:
    """CloverLeaf-style hydro step: seven liftable sites, two fallbacks.

    ``accelerate`` holds two nests whose scalar temporary
    (``stepbymass``) is re-initialised between them — dead after each
    span, so both sites lift under the precise liveness pass while the
    old name-mention heuristic demoted the first one.

    The driver chains the kernels so substituted outputs feed later
    kernels *and* the unliftable loops (``vol_flux`` → ``advec_cell``,
    ``pressure`` → ``update_energy``, ``density1`` → ``apply_floor`` →
    ``reverse_halo``), which is what makes the differential run a real
    whole-program check rather than five independent kernel checks.
    """
    return MiniApp(
        name="cloverleaf_mini",
        suite="CloverLeaf",
        source=_CLOVERLEAF_MINI,
        driver="hydro",
        grids=(8, 13, 21),
        expected_liftable=7,
        expected_fallback=2,
        notes="hydro step: flux, EOS, viscosity, advection, energy, "
        "acceleration (two nests with a dead scalar temporary) + "
        "conditional floor and decrementing halo fallbacks",
    )


def heat_mini_app() -> MiniApp:
    """Two-kernel heat relaxation whose driver calls one kernel twice."""
    return MiniApp(
        name="heat_mini",
        suite="StencilMark",
        source=_HEAT_MINI,
        driver="heat_driver",
        grids=(6, 11, 16),
        expected_liftable=2,
        expected_fallback=1,
        notes="Jacobi step + copy-back, repeated call site, conditional clamp fallback",
    )


def mini_apps() -> List[MiniApp]:
    """Every bundled multi-kernel application."""
    return [cloverleaf_mini_app(), heat_mini_app()]


def mini_app(name: str) -> MiniApp:
    for app in mini_apps():
        if app.name == name:
            return app
    raise KeyError(f"unknown mini-app {name!r}")
