"""Structural fingerprints of kernels and synthesis configurations.

A fingerprint is a SHA-256 digest over a canonical, JSON-serialisable
encoding of the kernel IR (:mod:`repro.ir.nodes`).  The encoding is
purely structural: statement and expression trees are walked
recursively, array and scalar declarations are sorted by name, and the
kernel's display ``name``/``source_name`` are excluded so that two
structurally identical kernels extracted from different files share one
cache entry.

``fingerprint_synthesis`` extends the kernel digest with the
synthesis-relevant options and :data:`CODE_VERSION`, producing the key
under which verified summaries are stored.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Sequence

from repro.ir import nodes as ir

# Bump whenever template generation, the strategy roster, the candidate
# space, or the verifier change in a way that affects which summary is
# synthesized for a given kernel: every cached entry is invalidated.
# "stng-cache-2": the synthesis configuration grew a "compile" section
# (CompileOptions of the closure-compiled evaluation path), so entries
# recorded before the compile layer existed must not be replayed.
# "stng-cache-3": interpreter MOD semantics changed from Python's
# flooring ``%`` to Fortran truncation-toward-zero (trunc_mod), so
# summaries verified under the old semantics must not be replayed.
# "stng-cache-4": the bounded verifier's loop-counter enumeration moved
# to exact Fortran trip-count semantics (degenerate and strided ranges
# enumerate different states), the verifier hierarchy gained the Tier-3
# inductive prover with proof certificates in the payload, and strided
# slab invariants can take the exact completed-region shape — entries
# recorded before any of this must not be replayed.
CODE_VERSION = "stng-cache-4"


# ---------------------------------------------------------------------------
# Canonical IR encoding
# ---------------------------------------------------------------------------

def encode_value_expr(expr: ir.ValueExpr) -> List[Any]:
    """Encode one IR value expression as a canonical nested list."""
    if isinstance(expr, ir.IntConst):
        return ["int", expr.value]
    if isinstance(expr, ir.RealConst):
        return ["real", repr(expr.value)]
    if isinstance(expr, ir.VarRef):
        return ["var", expr.name]
    if isinstance(expr, ir.ArrayLoad):
        return ["load", expr.array, [encode_value_expr(i) for i in expr.indices]]
    if isinstance(expr, ir.BinOp):
        return ["bin", expr.op, encode_value_expr(expr.left), encode_value_expr(expr.right)]
    if isinstance(expr, ir.UnaryOp):
        return ["unary", expr.op, encode_value_expr(expr.operand)]
    if isinstance(expr, ir.FuncCall):
        return ["call", expr.func, [encode_value_expr(a) for a in expr.args]]
    if isinstance(expr, ir.Compare):
        return ["cmp", expr.op, encode_value_expr(expr.left), encode_value_expr(expr.right)]
    raise TypeError(f"cannot fingerprint IR expression {expr!r}")


def encode_stmt(stmt: ir.Stmt) -> List[Any]:
    """Encode one IR statement as a canonical nested list."""
    if isinstance(stmt, ir.Block):
        return ["block", [encode_stmt(s) for s in stmt.statements]]
    if isinstance(stmt, ir.Assign):
        return ["assign", stmt.target, encode_value_expr(stmt.value)]
    if isinstance(stmt, ir.ArrayStore):
        return [
            "store",
            stmt.array,
            [encode_value_expr(i) for i in stmt.indices],
            encode_value_expr(stmt.value),
        ]
    if isinstance(stmt, ir.Loop):
        return [
            "loop",
            stmt.counter,
            encode_value_expr(stmt.lower),
            encode_value_expr(stmt.upper),
            stmt.step,
            encode_stmt(stmt.body),
        ]
    if isinstance(stmt, ir.If):
        return [
            "if",
            encode_value_expr(stmt.condition),
            encode_stmt(stmt.then_body),
            encode_stmt(stmt.else_body) if stmt.else_body is not None else None,
        ]
    raise TypeError(f"cannot fingerprint IR statement {stmt!r}")


def encode_kernel(kernel: ir.Kernel) -> List[Any]:
    """The canonical encoding hashed by :func:`fingerprint_kernel`.

    The display ``name`` and ``source_name`` are deliberately omitted:
    the fingerprint addresses the kernel's *content*.
    """
    arrays = sorted(
        [
            [
                decl.name,
                [[encode_value_expr(lo), encode_value_expr(hi)] for lo, hi in decl.bounds],
                decl.element_type,
                decl.is_pointer,
            ]
            for decl in kernel.arrays
        ]
    )
    scalars = sorted([[decl.name, decl.scalar_type] for decl in kernel.scalars])
    return [
        "kernel",
        list(kernel.params),
        arrays,
        scalars,
        encode_stmt(kernel.body),
        [encode_value_expr(a) for a in kernel.assumptions],
    ]


def _digest(payload: Any) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_kernel(kernel: ir.Kernel) -> str:
    """Content address of one kernel's IR (hex SHA-256)."""
    return _digest(encode_kernel(kernel))


def options_signature(config: Mapping[str, Any]) -> List[Any]:
    """Canonical, sorted encoding of a synthesis configuration mapping."""
    encoded: List[Any] = []
    for key in sorted(config):
        value = config[key]
        if isinstance(value, (list, tuple)):
            value = list(value)
        encoded.append([key, value])
    return encoded


def fingerprint_synthesis(
    kernel: ir.Kernel,
    config: Mapping[str, Any],
    code_version: str = CODE_VERSION,
) -> str:
    """Cache key for one (kernel, options, code version) synthesis run."""
    return _digest(
        [
            "synthesis",
            code_version,
            fingerprint_kernel(kernel),
            options_signature(config),
        ]
    )
