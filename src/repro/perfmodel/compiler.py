"""Compiler behaviour models: who can optimise what, and how well.

Table 1's columns are ratios of the same kernel built four ways; the
differences come from how much parallelism, vectorisation and locality
each toolchain extracts and how badly hand-optimisations confuse it:

* **gfortran -O3** (baseline): serial; vectorises only simple innermost
  loops; no parallelisation.  All speedups are relative to it.
* **ifort -parallel** on the *original* code: auto-parallelisation
  succeeds only on clean affine nests; on hand-tiled / unrolled /
  non-affine code it typically gives no speedup (≈1×), and on the
  challenge problems its heuristics misfire badly (orders of magnitude
  slower — §6.5).
* **ifort -parallel** on the *regenerated clean C*: the same compiler on
  the deoptimized code parallelises and vectorises successfully.
* **Halide + autotuning**: parallel across cores, vectorised, tiled for
  locality; quality depends on the autotuned schedule.

Every model maps a :class:`~repro.perfmodel.workload.KernelWorkload`
(plus, for Halide, a :class:`~repro.halide.schedule.Schedule`) to an
estimated runtime on the :class:`~repro.perfmodel.machine.MachineModel`.
A small deterministic per-kernel perturbation (hashed from the kernel
name) models the benchmark-to-benchmark variation that gives the paper
its spread of speedups without changing any ordering produced by the
mechanisms above.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional

from repro.halide.schedule import Schedule
from repro.perfmodel.machine import GPU_K80, GPUModelSpec, MachineModel, XEON_NODE
from repro.perfmodel.workload import KernelWorkload


def _jitter(name: str, tag: str, spread: float = 0.15) -> float:
    """Deterministic multiplicative perturbation in [1-spread, 1+spread]."""
    digest = hashlib.sha256(f"{name}:{tag}".encode()).digest()
    unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    return 1.0 - spread + 2.0 * spread * unit


def _roofline_time(
    workload: KernelWorkload,
    machine: MachineModel,
    cores: int,
    vector_width: int,
    locality: float,
    efficiency: float,
) -> float:
    """Runtime of one kernel invocation under a roofline with an efficiency factor."""
    gflops = machine.peak_gflops(cores, vector_width) * efficiency
    bandwidth = machine.attainable_bandwidth(cores, locality)
    compute_time = workload.flops / (gflops * 1e9)
    memory_time = workload.bytes_moved / (bandwidth * 1e9)
    time = max(compute_time, memory_time)
    if cores > 1:
        time += machine.parallel_overhead_us * 1e-6
    return time


@dataclass(frozen=True)
class CompilerModel:
    """One toolchain's ability to exploit the machine on a given kernel."""

    name: str
    parallel: bool
    auto_vectorize: bool
    handles_hand_tiled: bool
    base_efficiency: float
    pathological_on_nonaffine: bool = False

    def runtime(
        self,
        workload: KernelWorkload,
        machine: MachineModel = XEON_NODE,
        clean_input: bool = False,
    ) -> float:
        """Estimated runtime of this compiler's build of the kernel.

        ``clean_input`` marks the regenerated (deoptimized) source: the
        hand-optimisation penalties do not apply to it.
        """
        dirty = workload.hand_tiled and not clean_input
        cores = machine.cores if self.parallel else 1
        vector = machine.vector_width if self.auto_vectorize else 1
        efficiency = self.base_efficiency
        # Hand-tiled code is tuned for serial cache behaviour, so a serial
        # compiler benefits from its locality even though it cannot vectorise
        # or parallelise it.
        locality = 0.45 if workload.hand_tiled else 0.15

        if self.parallel:
            # Auto-parallelisation is fragile: vendor compilers prove
            # independence only for a minority of real loop nests (this is why
            # the paper's median ifort speedup is 1.0x).  Success is a
            # deterministic per-kernel coin weighted by how simple the nest is.
            succeeds = self._auto_parallel_succeeds(workload, clean_input)
            if not succeeds:
                cores = 1
        if self.parallel and dirty and not self.handles_hand_tiled:
            # Hand-optimisations always defeat the dependence analysis.
            cores = 1
            vector = 1
            efficiency *= 0.95
        if self.auto_vectorize and dirty and not self.handles_hand_tiled:
            vector = 1
        if dirty and self.pathological_on_nonaffine:
            # §6.5: the vendor compiler's heuristics misfire on the deeply
            # tiled challenge kernels and the generated code is orders of
            # magnitude slower than the plain serial build.
            efficiency *= 1.0 / 8000.0
            cores = 1
            vector = 1
        if workload.transcendental:
            efficiency *= 0.8

        time = _roofline_time(workload, machine, cores, vector, locality, efficiency)
        return time * _jitter(workload.name, self.name)

    def _auto_parallel_succeeds(self, workload: KernelWorkload, clean_input: bool) -> bool:
        """Deterministic per-kernel coin for auto-parallelisation success.

        Clean regenerated loop nests are easier to analyse (higher success
        rate), and originally hand-tiled kernels always succeed once
        deoptimized — that recovery is the §6.5 result.
        """
        if clean_input and workload.hand_tiled:
            return True
        digest = hashlib.sha256(f"autopar:{workload.name}".encode()).digest()
        unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
        threshold = 0.35 if clean_input else 0.15
        if workload.loads_per_point <= 2 and workload.dimensionality >= 3:
            threshold += 0.2
        return unit < threshold


GFORTRAN = CompilerModel(
    name="gfortran-O3",
    parallel=False,
    auto_vectorize=True,
    handles_hand_tiled=False,
    base_efficiency=0.55,
)

IFORT_PARALLEL = CompilerModel(
    name="ifort-parallel",
    parallel=True,
    auto_vectorize=True,
    handles_hand_tiled=False,
    base_efficiency=0.60,
    pathological_on_nonaffine=True,
)

IFORT_PARALLEL_CLEAN = CompilerModel(
    name="ifort-parallel-clean",
    parallel=True,
    auto_vectorize=True,
    handles_hand_tiled=True,
    base_efficiency=0.45,
)


@dataclass(frozen=True)
class HalideCPUModel:
    """Halide + autotuned schedule on the 24-core node."""

    name: str = "halide-autotuned"

    def runtime(
        self,
        workload: KernelWorkload,
        schedule: Schedule,
        machine: MachineModel = XEON_NODE,
    ) -> float:
        cores = machine.cores if schedule.parallel_dim is not None else 1
        vector = schedule.vector_width
        tiled = bool(schedule.tile_sizes) and any(schedule.tile_sizes)
        locality = 0.65 if tiled else 0.25
        if schedule.unroll > 1:
            locality += 0.05
        # Halide's generated loop nests are clean, so efficiency is high; the
        # schedule determines how close to the roofline the kernel lands.
        efficiency = 0.80
        if schedule.dim_order is not None and schedule.dim_order[0] != 0:
            # traversing the fast dimension last wrecks spatial locality
            locality *= 0.3
            efficiency *= 0.6
        time = _roofline_time(workload, machine, cores, vector, locality, efficiency)
        return time * _jitter(workload.name, self.name)


HALIDE_CPU = HalideCPUModel()


@dataclass(frozen=True)
class HalideGPUModel:
    """Halide's naive GPU schedule on the K80 (§6.4)."""

    spec: GPUModelSpec = GPU_K80
    name: str = "halide-gpu"

    def runtime(self, workload: KernelWorkload, include_transfer: bool) -> float:
        flops = workload.flops
        bytes_on_device = workload.bytes_moved
        compute = flops / (self.spec.peak_gflops * 1e9 * self.spec.occupancy)
        memory = bytes_on_device / (self.spec.memory_bandwidth_gbs * 1e9)
        time = max(compute, memory) + self.spec.kernel_launch_us * 1e-6
        if include_transfer:
            if workload.is_reduction_like:
                # Reduction-style kernels keep their grids resident on the
                # device and only ship a tiny result back (§6.4: "many of
                # these compute reductions, so have little data to
                # communicate").
                transferred = workload.points * 8.0 * 0.002
            else:
                # One input grid in, one output grid back, overlapped with
                # compute on the copy engines.
                transferred = workload.points * 8.0 * 2.0
            time += transferred / (self.spec.pcie_bandwidth_gbs * 1e9)
        return time * _jitter(workload.name, self.name)


HALIDE_GPU = HalideGPUModel()


def estimate_runtime(
    workload: KernelWorkload,
    toolchain: str,
    schedule: Optional[Schedule] = None,
    clean_input: bool = False,
    machine: MachineModel = XEON_NODE,
) -> float:
    """Convenience dispatcher used by the benchmark harness."""
    if toolchain == "gfortran":
        return GFORTRAN.runtime(workload, machine)
    if toolchain == "ifort-parallel":
        return IFORT_PARALLEL.runtime(workload, machine, clean_input=clean_input)
    if toolchain == "ifort-parallel-clean":
        return IFORT_PARALLEL_CLEAN.runtime(workload, machine, clean_input=True)
    if toolchain == "halide":
        return HALIDE_CPU.runtime(workload, schedule or Schedule.baseline_parallel(workload.dimensionality), machine)
    if toolchain == "halide-gpu":
        return HALIDE_GPU.runtime(workload, include_transfer=True)
    if toolchain == "halide-gpu-notransfer":
        return HALIDE_GPU.runtime(workload, include_transfer=False)
    raise ValueError(f"unknown toolchain {toolchain!r}")
