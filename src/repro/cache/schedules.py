"""Content-addressed store of tuned-schedule winners.

Measured autotuning is the most expensive mode the pipeline has: every
evaluation compiles and *times* a candidate schedule, and timing cannot
be cached, parallelised away or skipped — it is wall-clock by
definition.  But the *outcome* of a tuning run is a pure function of
what was tuned and where: the kernel (structurally, via
:func:`~repro.cache.fingerprint.fingerprint_kernel`), the search space
shape, the measuring backend, the compiler that built the candidates
and the machine that timed them, plus the tuning configuration (budget,
repeats, measurement grid, seed, thread count).  This store keys the
winning :class:`~repro.halide.schedule.Schedule` and its measurement
summary by the SHA-256 of exactly that tuple, so a warm ``measure``-mode
run performs **zero** measurements and zero compiler invocations — it
loads the winner and moves on.

Layout: records are bucketed into ``<root>/<prefix>/`` shard
subdirectories by the first two characters of their key (the shared
:func:`~repro.cache.shards.shard_path` helper), one ``<key>.json``
record per file.  Writers publish atomically (temp file +
``os.replace``) under a *per-shard* crash-reclaimable
:class:`~repro.cache.locks.FileLock`.  Every record embeds the SHA-256
of its own canonical content; a load that fails parsing, format or
digest verification quarantines the record aside as ``*.corrupt-<n>``
(:class:`~repro.cache.integrity.CacheIntegrityWarning`) and reports a
miss, so the caller re-tunes instead of trusting a torn write.

Machine identity (:func:`machine_fingerprint`) deliberately covers the
platform, architecture and core count but *not* the hostname: two
identical containers share tuned schedules, while moving the store to a
different architecture or core count invalidates every entry.

The per-instance ``hits``/``misses`` counters let benchmarks *prove*
warmth: a warm application tune asserts ``misses == 0`` next to the
objective's ``evaluations == 0``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.cache.integrity import quarantine_file
from repro.cache.locks import FileLock, LockTimeout
from repro.cache.shards import shard_path
from repro.halide.schedule import Schedule
from repro.testing import faultinject

# Bump when the record layout, the Schedule fields or the key recipe
# change: old records become unreachable rather than wrongly reused.
SCHEDULE_FORMAT = "tuned-schedule-1"


def machine_fingerprint() -> str:
    """Identity of the timing machine, folded into every schedule key.

    Platform, architecture and core count — the properties that change
    which schedule wins — but no hostname, so identical machines (CI
    containers, cluster nodes) share one cache population.
    """
    return (
        f"{platform.system()}|{platform.machine()}|cores={os.cpu_count() or 1}"
    )


def schedule_key(
    kernel_fingerprint: str,
    space_signature: str,
    backend: str,
    toolchain_fingerprint: str,
    machine: str,
    config: Mapping[str, Any],
) -> str:
    """Content address of one tuning run's outcome.

    The key covers everything the winning schedule depends on; any
    ingredient changing — a different kernel body, a wider search
    space, another backend or compiler, a machine with more cores, a
    different budget/seed — produces a different key, never a stale hit.
    """
    identity = {
        "format": SCHEDULE_FORMAT,
        "kernel": kernel_fingerprint,
        "space": space_signature,
        "backend": backend,
        "toolchain": toolchain_fingerprint,
        "machine": machine,
        "config": dict(config),
    }
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def schedule_to_payload(schedule: Schedule) -> Dict[str, Any]:
    """A JSON-able dict carrying every Schedule field."""
    return {
        "parallel_dim": schedule.parallel_dim,
        "tile_sizes": list(schedule.tile_sizes),
        "vector_width": schedule.vector_width,
        "unroll": schedule.unroll,
        "dim_order": None if schedule.dim_order is None else list(schedule.dim_order),
        "gpu": schedule.gpu,
        "gpu_block": list(schedule.gpu_block),
        "inline": schedule.inline,
    }


def schedule_from_payload(payload: Mapping[str, Any]) -> Schedule:
    """Rebuild a Schedule from :func:`schedule_to_payload` output.

    Construction re-runs the Schedule invariant checks, so a record
    edited into inconsistency raises rather than lowering garbage.
    """
    dim_order = payload.get("dim_order")
    return Schedule(
        parallel_dim=payload.get("parallel_dim"),
        tile_sizes=tuple(payload.get("tile_sizes") or ()),
        vector_width=int(payload.get("vector_width", 1)),
        unroll=int(payload.get("unroll", 1)),
        dim_order=None if dim_order is None else tuple(dim_order),
        gpu=bool(payload.get("gpu", False)),
        gpu_block=tuple(payload.get("gpu_block") or (16, 16)),
        inline=bool(payload.get("inline", False)),
    )


def _record_digest(record: Mapping[str, Any]) -> str:
    """SHA-256 of the record's canonical JSON, excluding the digest field."""
    stripped = {name: value for name, value in record.items() if name != "sha256"}
    canonical = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ScheduleStore:
    """A directory of content-addressed tuned-schedule records.

    Parameters
    ----------
    directory:
        Where records live; created on first write.
    lock_timeout:
        Passed to the publish-time :class:`FileLock`; on timeout the
        record simply is not published (the tuning result is still
        returned to this process's caller).
    """

    def __init__(self, directory: "os.PathLike[str] | str", lock_timeout: float = 10.0):
        self.directory = Path(directory)
        self.lock_timeout = lock_timeout
        self.hits = 0
        self.misses = 0

    def shard_dir(self, key: str) -> Path:
        """The ``<root>/<prefix>/`` bucket holding ``key``'s record."""
        return shard_path(self.directory, key)

    def publish_lock_path(self, key: str) -> Path:
        """The per-shard lock publications into ``key``'s bucket take."""
        return Path(str(self.shard_dir(key)) + ".lock")

    def record_path(self, key: str) -> Path:
        return self.shard_dir(key) / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The verified record for ``key``, or ``None`` (counted as a miss).

        A record that is unreadable, unparseable, from another format
        version, or whose bytes fail the embedded digest is quarantined
        and reported as a miss — the caller re-tunes and republishes.
        """
        path = self.record_path(key)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            quarantine_file(path, f"schedule record {key[:16]} is unreadable")
            self.misses += 1
            return None
        if (
            not isinstance(record, dict)
            or record.get("format") != SCHEDULE_FORMAT
            or record.get("sha256") != _record_digest(record)
        ):
            quarantine_file(path, f"schedule record {key[:16]} failed verification")
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Mapping[str, Any]) -> Optional[Path]:
        """Publish one tuning outcome under ``key``; returns its path.

        The store stamps the format version, creation time and content
        digest; publication is atomic and lock-protected.  A lock
        timeout skips publishing (returns ``None``) rather than risking
        a torn record — the caller keeps its in-memory result.
        """
        faultinject.fire("schedule-publish", key)
        stamped: Dict[str, Any] = dict(record)
        stamped["format"] = SCHEDULE_FORMAT
        stamped["created"] = time.time()
        stamped["sha256"] = _record_digest(stamped)
        target = self.record_path(key)
        bucket = self.shard_dir(key)
        bucket.mkdir(parents=True, exist_ok=True)
        lock = FileLock(self.publish_lock_path(key), timeout=self.lock_timeout)
        try:
            lock.acquire()
        except LockTimeout:
            return None
        try:
            fd, tmp_name = tempfile.mkstemp(
                prefix=key[:16] + ".", suffix=".json.tmp", dir=str(bucket)
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(stamped, handle, indent=2, sort_keys=True)
                os.replace(tmp_name, target)
                faultinject.corrupt_file("schedule-record", key, target)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            return target
        finally:
            lock.release()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.rglob("*.json"))

    def stats(self) -> Dict[str, Any]:
        """JSON-able counters for benchmark/CI publication."""
        return {
            "directory": str(self.directory),
            "entries": self.entry_count(),
            "schedule_hits": self.hits,
            "schedule_misses": self.misses,
        }
