"""E6 — Batch scheduler: cold-vs-warm cache and pool-size timings.

Runs the selected suite cross-section through the batch scheduler three
ways — cold (empty cache) at the machine's pool size, warm (primed
cache) at the same pool size, and warm at pool size 1 — and records the
timings.  The warm run must be at least 5× faster than the cold run,
and batch classification must agree with the sequential pipeline
(``lifted_reports``) for every suite.

With ``REPRO_FULL=1`` this covers all 93 Table 2 kernels.
"""

from __future__ import annotations

import os
import time

from repro.cache import SynthesisCache
from repro.pipeline import BatchScheduler, PipelineOptions
from repro.pipeline.scheduler import BatchResult

OPTIONS = PipelineOptions(autotune_budget=80, verifier_environments=1)

WARM_SPEEDUP_FLOOR = 5.0


def _timed_run(selected_cases, pool_size: int, cache_path) -> "tuple[BatchResult, float]":
    cache = SynthesisCache(cache_path, autosave=False)
    scheduler = BatchScheduler(OPTIONS, pool_size=pool_size, cache=cache)
    start = time.perf_counter()
    result = scheduler.lift_cases(selected_cases)
    return result, time.perf_counter() - start


def test_batch_scheduler_cold_vs_warm(lifted_reports, selected_cases, benchmark, capsys, tmp_path):
    pool_n = os.cpu_count() or 1
    cache_path = tmp_path / "batch-cache.json"

    cold_result, cold_seconds = _timed_run(selected_cases, pool_n, cache_path)

    def warm_run():
        return _timed_run(selected_cases, pool_n, cache_path)

    warm_result, warm_seconds = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    _pool1_result, pool1_seconds = _timed_run(selected_cases, 1, cache_path)

    benchmark.extra_info.update(
        {
            "cases": len(selected_cases),
            "pool_size": pool_n,
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "warm_pool1_seconds": round(pool1_seconds, 3),
            "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
        }
    )
    with capsys.disabled():
        print("\n=== Batch scheduler (cold vs warm, pool sizes) ===")
        print(f"cases: {len(selected_cases)}   pool size: {pool_n}")
        print(f"cold  (pool {pool_n}): {cold_seconds:7.2f}s  "
              f"hits={cold_result.cache_hits} misses={cold_result.cache_misses}")
        print(f"warm  (pool {pool_n}): {warm_seconds:7.2f}s  "
              f"hits={warm_result.cache_hits} misses={warm_result.cache_misses}")
        print(f"warm  (pool 1): {pool1_seconds:7.2f}s")
        print(f"warm speedup: {cold_seconds / max(warm_seconds, 1e-9):.1f}x")

    # The content-addressed cache must make the warm run ≥5× faster.
    assert warm_seconds * WARM_SPEEDUP_FLOOR <= cold_seconds

    # Batch and sequential pipelines classify every suite identically.
    batch_by_suite = cold_result.by_suite()
    assert set(batch_by_suite) == set(lifted_reports)
    for suite, sequential in lifted_reports.items():
        batch_outcomes = [(r.name, r.outcome) for r in batch_by_suite[suite]]
        sequential_outcomes = [(r.name, r.outcome) for r in sequential]
        assert batch_outcomes == sequential_outcomes

    # Warm outcomes replay the cold outcomes exactly.
    assert [(r.name, r.outcome) for r in warm_result.reports] == [
        (r.name, r.outcome) for r in cold_result.reports
    ]
