"""The STNG pipeline driver."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.autotune import autotune
from repro.backend.cgen import emit_serial_c
from repro.compile import CompileOptions
from repro.backend.gluegen import emit_fortran_glue
from repro.backend.halidegen import (
    GeneratedStencil,
    HalideGenerationError,
    postcondition_to_func,
)
from repro.frontend.candidates import Candidate, CandidateReport, identify_candidates
from repro.frontend.lowering import LoweringError, lower_candidate
from repro.frontend.parser import ParseError, parse_source
from repro.halide.schedule import Schedule
from repro.ir.nodes import Kernel
from repro.perfmodel.compiler import (
    GFORTRAN,
    HALIDE_CPU,
    HALIDE_GPU,
    IFORT_PARALLEL,
    IFORT_PARALLEL_CLEAN,
)
from repro.perfmodel.workload import KernelWorkload, workload_from_func, workload_from_kernel
from repro.synthesis.cegis import CEGISResult, SynthesisFailure, synthesize_kernel


class KernelOutcome(str, Enum):
    """Classification of one flagged loop nest (the Table 2 categories).

    ``LIFT_FAILED`` is not a paper category: it marks a kernel whose
    lifting *infrastructure* failed — the worker crashed, hung past the
    scheduler deadline, or raised — after the fault policy's retries
    were exhausted (see :mod:`repro.pipeline.faults`).  Table 2 counts
    it with the untranslated kernels of its stencil class.
    """

    TRANSLATED = "translated"
    UNTRANSLATED_STENCIL = "untranslated_stencil"
    NOT_A_STENCIL = "not_a_stencil"
    LIFT_FAILED = "lift_failed"


@dataclass
class PipelineOptions:
    """Tunables of the pipeline (defaults keep the full suite under a few minutes).

    ``compile_options`` selects the synthesis evaluation backend
    (closure-compiled by default; ``CompileOptions(enabled=False)``
    falls back to the tree-walking interpreters with bit-identical
    results).  A plain mapping is accepted too, because the batch
    scheduler round-trips options through ``dataclasses.asdict`` on
    their way to pool workers.

    ``measure`` turns on *measured* autotuning alongside the analytic
    model: each translated kernel's generated stencil is lowered to a
    loop nest and wall-clock tuned on synthetic buffers of roughly
    ``measure_points`` output points, with every tuned schedule
    differentially checked bit-identical against the schedule-blind
    reference executor.  Measured numbers are wall-clock and therefore
    nondeterministic; they are excluded from report signatures.

    ``inductive`` (default on) adds Tier 3 of the verifier hierarchy —
    the unbounded inductive prover of
    :mod:`repro.verification.inductive` — behind the bounded check:
    CEGIS prefers candidates whose summaries *prove* for all array
    sizes (trying up to ``max_proof_attempts`` bounded-verified
    candidates before falling back to the first one), and every lift
    reports its verification level ("proved" versus "verified (bounded
    N=k)").  Disabling it reproduces the prover-less pipeline
    byte-identically.

    ``measure_backend`` accepts ``"codegen"``, ``"interp"``,
    ``"native"`` (compiled C, see :mod:`repro.native`) and ``"auto"``
    (native when a C toolchain is present).  ``artifact_dir``
    optionally points the native backend at a shared compiled-artifact
    directory so warm pipeline runs load cached ``.so`` files instead
    of re-compiling; the :class:`MeasuredPerformance.backend` field
    records the backend that actually ran (native falls back to
    codegen when unavailable).

    ``threads`` sets the native worker-thread count used for measured
    runs and substituted execution (``None`` → the process default,
    ``$REPRO_NATIVE_THREADS`` or 1).  ``schedule_dir`` points measured
    autotuning at a shared :class:`~repro.cache.schedules.ScheduleStore`
    of tuned winners: a warm ``measure``-mode run whose kernel, search
    space, backend, toolchain, machine and tuning configuration all
    match a stored record performs zero measurements and zero compiler
    invocations for that kernel (``MeasuredPerformance.from_cache``).
    """

    seed: int = 0
    trials: int = 2
    autotune_budget: int = 120
    max_candidates: int = 2000
    verifier_environments: int = 2
    synthesis_timeout: Optional[float] = None
    compile_options: CompileOptions = field(default_factory=CompileOptions)
    inductive: bool = True
    max_proof_attempts: int = 12
    measure: bool = False
    measure_backend: str = "codegen"
    measure_budget: int = 12
    measure_points: int = 9216
    measure_repeats: int = 1
    artifact_dir: Optional[str] = None
    threads: Optional[int] = None
    schedule_dir: Optional[str] = None

    def __post_init__(self) -> None:
        self.compile_options = CompileOptions.coerce(self.compile_options)


@dataclass
class MeasuredPerformance:
    """Measured (wall-clock) autotuning results for one generated stencil.

    ``schedule`` is the winning :class:`~repro.halide.schedule.Schedule`
    object itself (``tuned_schedule`` is its description text); the
    whole-application executor realizes substituted kernels under it.

    ``from_cache`` marks a result replayed from the tuned-schedule
    store (``PipelineOptions.schedule_dir``): the seconds are the ones
    recorded when the schedule was originally tuned, and
    ``evaluations`` is 0 because the warm run measured nothing.

    ``pruned_illegal``/``pruned_duplicate`` report the static
    schedule-legality pruner (:mod:`repro.analysis.legality`): proposals
    rejected before any compile/measure, and canonical-duplicate
    traversals replayed from the in-run cost cache.  ``evaluations`` is
    the objective's own counter — actual measurements — so pruning
    shows up as a drop there on a fixed tuning budget.
    """

    default_seconds: float
    tuned_seconds: float
    speedup: float
    tuned_schedule: str
    backend: str
    evaluations: int
    verified: bool
    schedule: Optional["Schedule"] = None
    from_cache: bool = False
    pruned_illegal: int = 0
    pruned_duplicate: int = 0


@dataclass
class PerformanceRow:
    """The Table 1 columns for one translated kernel.

    ``measured`` is only present when the pipeline runs with
    ``PipelineOptions.measure``: the modeled speedups above come from
    the roofline model, the measured block from actually executing the
    lowered loop nests.
    """

    halide_speedup: float
    icc_before_speedup: float
    icc_after_speedup: float
    gpu_speedup: float
    gpu_speedup_no_transfer: float
    tuned_schedule: str
    baseline_seconds: float
    measured: Optional[MeasuredPerformance] = None


@dataclass
class KernelReport:
    """Everything the pipeline learned about one flagged loop nest."""

    name: str
    suite: str
    outcome: KernelOutcome
    is_stencil: bool
    kernel: Optional[Kernel] = None
    lift: Optional[CEGISResult] = None
    stencils: List[GeneratedStencil] = field(default_factory=list)
    halide_cpp: List[str] = field(default_factory=list)
    serial_c: Optional[str] = None
    glue_code: Optional[str] = None
    performance: Optional[PerformanceRow] = None
    failure_reason: Optional[str] = None
    annotations_used: bool = False
    lift_seconds: float = 0.0
    # A repro.pipeline.faults.JobFailure when the outcome is LIFT_FAILED
    # (kept untyped here: faults imports this module).
    fault: Optional[object] = None

    @property
    def translated(self) -> bool:
        return self.outcome is KernelOutcome.TRANSLATED

    @property
    def verification_level(self) -> Optional[str]:
        """"proved", "verified (bounded N=k)", or None when not lifted."""
        if self.lift is None:
            return None
        return self.lift.verification_level


class STNGPipeline:
    """Figure 3's toolchain: frontend, summary search, verification, codegen.

    The expensive middle stage (synthesis) is injectable:

    ``cache``
        an optional :class:`repro.cache.SynthesisCache`; verified
        summaries (and definitive failures) are replayed from it so
        warm runs skip synthesis entirely.
    ``executor``
        an optional :mod:`concurrent.futures` executor; when present,
        the CEGIS strategies for each kernel are raced on it with
        first-verified-wins cancellation (see
        :func:`repro.synthesis.cegis.synthesize_kernel`).
    ``synthesizer``
        full override — a callable ``kernel -> CEGISResult`` (raising
        :class:`SynthesisFailure` on failure) replacing the default
        ``synthesize_kernel`` call; used by the batch scheduler.
    """

    def __init__(
        self,
        options: Optional[PipelineOptions] = None,
        cache=None,
        executor=None,
        synthesizer=None,
    ):
        self.options = options or PipelineOptions()
        self.cache = cache
        self.executor = executor
        self._synthesizer = synthesizer

    def _synthesize(self, kernel: Kernel) -> CEGISResult:
        if self._synthesizer is not None:
            return self._synthesizer(kernel)
        return synthesize_kernel(
            kernel,
            trials=self.options.trials,
            seed=self.options.seed,
            max_candidates=self.options.max_candidates,
            verifier_environments=self.options.verifier_environments,
            cache=self.cache,
            executor=self.executor,
            timeout=self.options.synthesis_timeout,
            compile_options=self.options.compile_options,
            inductive=self.options.inductive,
            max_proof_attempts=self.options.max_proof_attempts,
        )

    # ------------------------------------------------------------------
    # Front end
    # ------------------------------------------------------------------
    def identify(self, source: str) -> CandidateReport:
        """Parse source and flag candidate loop nests (§5.1)."""
        return identify_candidates(parse_source(source))

    # ------------------------------------------------------------------
    # Lifting one kernel
    # ------------------------------------------------------------------
    def lift_kernel(self, kernel: Kernel, suite: str = "", is_stencil: bool = True,
                    points: Optional[int] = None, reduction_like: bool = False) -> KernelReport:
        """Lift one IR kernel end to end and evaluate the result."""
        report = KernelReport(
            name=kernel.name,
            suite=suite,
            outcome=KernelOutcome.UNTRANSLATED_STENCIL if is_stencil else KernelOutcome.NOT_A_STENCIL,
            is_stencil=is_stencil,
            kernel=kernel,
            annotations_used=bool(kernel.assumptions),
        )
        start = time.perf_counter()
        try:
            result = self._synthesize(kernel)
        except SynthesisFailure as exc:
            report.failure_reason = str(exc)
            report.lift_seconds = time.perf_counter() - start
            return report
        report.lift_seconds = time.perf_counter() - start
        report.lift = result
        report.outcome = KernelOutcome.TRANSLATED
        self._finalize_report(report, kernel, result, points=points, reduction_like=reduction_like)
        return report

    def _finalize_report(
        self,
        report: KernelReport,
        kernel: Kernel,
        result: CEGISResult,
        points: Optional[int],
        reduction_like: bool,
    ) -> None:
        """Backend code generation and performance evaluation for a lifted kernel."""
        try:
            report.stencils = postcondition_to_func(result.post)
            report.halide_cpp = [stencil.cpp_source for stencil in report.stencils]
            report.glue_code = emit_fortran_glue(kernel, report.stencils)
        except HalideGenerationError as exc:
            # High-dimensional kernels (TERRA) are lifted but need the
            # per-dimensionality splitting workaround; record and continue.
            report.failure_reason = f"halide generation: {exc}"
        report.serial_c, _nests = emit_serial_c(result.post, function_name=f"{kernel.name}_clean")

        if report.stencils:
            report.performance = self._evaluate_performance(
                kernel, report.stencils, points=points, reduction_like=reduction_like
            )

    def lift_source(
        self,
        source: str,
        suite: str = "",
        stencil_flags: Optional[Dict[str, bool]] = None,
        points: Optional[int] = None,
    ) -> List[KernelReport]:
        """Run the whole pipeline on one Fortran source file."""
        reports: List[KernelReport] = []
        candidate_report = self.identify(source)
        flags = stencil_flags or {}
        for rejection in candidate_report.rejections:
            name = f"{rejection.procedure.name}_rejected"
            is_stencil = flags.get(rejection.procedure.name, True)
            reports.append(
                KernelReport(
                    name=name,
                    suite=suite,
                    outcome=(
                        KernelOutcome.UNTRANSLATED_STENCIL
                        if is_stencil
                        else KernelOutcome.NOT_A_STENCIL
                    ),
                    is_stencil=is_stencil,
                    failure_reason="; ".join(rejection.reasons),
                )
            )
        for candidate in candidate_report.candidates:
            is_stencil = flags.get(candidate.procedure.name, True)
            try:
                kernel = lower_candidate(candidate)
            except LoweringError as exc:
                reports.append(
                    KernelReport(
                        name=candidate.name,
                        suite=suite,
                        outcome=(
                            KernelOutcome.UNTRANSLATED_STENCIL
                            if is_stencil
                            else KernelOutcome.NOT_A_STENCIL
                        ),
                        is_stencil=is_stencil,
                        failure_reason=f"lowering: {exc}",
                    )
                )
                continue
            reports.append(self.lift_kernel(kernel, suite=suite, is_stencil=is_stencil, points=points))
        return reports

    # ------------------------------------------------------------------
    # Performance evaluation (Table 1 columns)
    # ------------------------------------------------------------------
    def _evaluate_performance(
        self,
        kernel: Kernel,
        stencils: Sequence[GeneratedStencil],
        points: Optional[int],
        reduction_like: bool,
    ) -> PerformanceRow:
        original = workload_from_kernel(kernel, points=points)
        if reduction_like:
            original = _mark_reduction(original)
        # The regenerated clean kernel: characterise from the first generated Func.
        clean = workload_from_func(
            stencils[0].func,
            name=kernel.name,
            points=original.points,
            dimensionality=original.dimensionality,
        )
        if reduction_like:
            clean = _mark_reduction(clean)

        baseline = GFORTRAN.runtime(original)
        icc_before = IFORT_PARALLEL.runtime(original)
        icc_after = IFORT_PARALLEL_CLEAN.runtime(clean)

        tuning = autotune(
            dimensions=max(clean.dimensionality, 1),
            objective=lambda schedule: HALIDE_CPU.runtime(clean, schedule),
            budget=self.options.autotune_budget,
            seed=self.options.seed,
        )
        halide_time = tuning.best_cost
        gpu_time = HALIDE_GPU.runtime(clean, include_transfer=True)
        gpu_time_nt = HALIDE_GPU.runtime(clean, include_transfer=False)

        measured = None
        if self.options.measure:
            measured = self._measure_performance(kernel, stencils[0])

        return PerformanceRow(
            halide_speedup=baseline / halide_time,
            icc_before_speedup=baseline / icc_before,
            icc_after_speedup=baseline / icc_after,
            gpu_speedup=baseline / gpu_time,
            gpu_speedup_no_transfer=baseline / gpu_time_nt,
            tuned_schedule=tuning.best_schedule.describe(),
            baseline_seconds=baseline,
            measured=measured,
        )

    def _measure_performance(
        self, kernel: Kernel, stencil: GeneratedStencil
    ) -> MeasuredPerformance:
        """Wall-clock autotune one generated stencil's lowered loop nest.

        Synthetic inputs are deterministic per kernel (seeded from the
        pipeline seed and the kernel name); every measured schedule is
        differentially checked bit-identical against the schedule-blind
        reference executor, so a lowering bug fails the lift instead of
        producing a fast-but-wrong schedule.

        With ``options.schedule_dir`` set, the tuned-schedule store is
        consulted *before* any measurement machinery is built: a hit
        returns the recorded winner immediately — zero measurements,
        zero compiler invocations — and a miss tunes as usual and then
        publishes the winner for the next run.
        """
        import zlib

        import numpy as np

        from repro.autotune import MeasuredObjective, MultiArmedBanditTuner, ScheduleSpace
        from repro.perfmodel.workload import domain_for_points

        func = stencil.func
        space = ScheduleSpace(func.dimensions)
        store = store_key = None
        if self.options.schedule_dir is not None:
            from repro.cache.fingerprint import fingerprint_kernel
            from repro.cache.schedules import (
                ScheduleStore,
                machine_fingerprint,
                schedule_from_payload,
                schedule_key,
            )
            from repro.native.dispatch import default_thread_count
            from repro.native.toolchain import find_toolchain, resolve_backend

            backend = resolve_backend(self.options.measure_backend)
            toolchain = find_toolchain() if backend == "native" else None
            toolchain_fp = (
                toolchain.fingerprint()
                if toolchain is not None
                else f"python-backend:{backend}"
            )
            threads = (
                self.options.threads
                if self.options.threads is not None
                else default_thread_count()
            )
            store = ScheduleStore(self.options.schedule_dir)
            store_key = schedule_key(
                fingerprint_kernel(kernel),
                space.signature(),
                backend,
                toolchain_fp,
                machine_fingerprint(),
                {
                    "budget": self.options.measure_budget,
                    "repeats": self.options.measure_repeats,
                    "points": self.options.measure_points,
                    "seed": self.options.seed,
                    "threads": threads,
                },
            )
            record = store.get(store_key)
            if record is not None:
                schedule = schedule_from_payload(record["schedule"])
                return MeasuredPerformance(
                    default_seconds=float(record["default_seconds"]),
                    tuned_seconds=float(record["tuned_seconds"]),
                    speedup=float(record["default_seconds"])
                    / max(float(record["tuned_seconds"]), 1e-12),
                    tuned_schedule=schedule.describe(),
                    backend=str(record["backend"]),
                    evaluations=0,
                    verified=bool(record["verified"]),
                    schedule=schedule,
                    from_cache=True,
                )
        domain = domain_for_points(func.dimensions, self.options.measure_points)
        extents = tuple(hi - lo + 1 for lo, hi in domain)
        rng = np.random.default_rng(
            (self.options.seed << 16) ^ zlib.crc32(kernel.name.encode())
        )
        inputs = {
            image.name: rng.standard_normal(
                tuple(
                    extents[dim] if dim < len(extents) else 8
                    for dim in range(image.dimensions)
                )
            )
            for image in func.inputs()
        }
        params = {param.name: float(rng.integers(1, 4)) for param in func.params()}
        artifacts = None
        if self.options.artifact_dir is not None:
            from repro.cache.artifacts import ArtifactStore

            artifacts = ArtifactStore(self.options.artifact_dir)
        objective = MeasuredObjective(
            func,
            domain,
            inputs,
            params=params,
            backend=self.options.measure_backend,
            repeats=self.options.measure_repeats,
            artifacts=artifacts,
            threads=self.options.threads,
        )
        from repro.analysis.legality import ScheduleChecker

        checker = ScheduleChecker(func, output=getattr(stencil, "array", None))
        tuner = MultiArmedBanditTuner(
            space, objective, seed=self.options.seed, legality=checker
        )
        result = tuner.tune(budget=self.options.measure_budget)
        if store is not None and store_key is not None:
            from repro.cache.schedules import schedule_to_payload

            store.put(
                store_key,
                {
                    "kernel": kernel.name,
                    "backend": objective.effective_backend,
                    "default_seconds": result.default_cost,
                    "tuned_seconds": result.best_cost,
                    "evaluations": objective.evaluations,
                    "verified": objective.all_verified,
                    "schedule": schedule_to_payload(result.best_schedule),
                },
            )
        return MeasuredPerformance(
            default_seconds=result.default_cost,
            tuned_seconds=result.best_cost,
            speedup=result.default_cost / max(result.best_cost, 1e-12),
            tuned_schedule=result.best_schedule.describe(),
            backend=objective.effective_backend,
            evaluations=objective.evaluations,
            verified=objective.all_verified,
            schedule=result.best_schedule,
            pruned_illegal=result.pruned_illegal,
            pruned_duplicate=result.pruned_duplicate,
        )


def _mark_reduction(workload: KernelWorkload) -> KernelWorkload:
    from dataclasses import replace

    return replace(workload, is_reduction_like=True)
