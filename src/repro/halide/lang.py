"""Front-end objects of the Halide-like DSL.

The programming model mirrors Halide's: ``Var`` objects name the
dimensions of the output domain, ``ImageParam`` objects are the input
buffers, ``Param`` objects are scalar inputs, and a ``Func`` is defined
by assigning an expression to ``func[vars]``.  Expressions are built
with ordinary Python operators and support calls to pure math
functions.  A ``Func`` definition is a pure function of its inputs, so
it can be evaluated (by :mod:`repro.halide.executor`), printed as C++
(by :mod:`repro.halide.cppgen`) and scheduled freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


class HalideError(Exception):
    """Raised for malformed pipeline definitions."""


class Expr:
    """Base class of DSL expressions."""

    def __add__(self, other):
        return BinOp("+", self, wrap(other))

    def __radd__(self, other):
        return BinOp("+", wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, wrap(other))

    def __rsub__(self, other):
        return BinOp("-", wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, wrap(other))

    def __rmul__(self, other):
        return BinOp("*", wrap(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, wrap(other))

    def __rtruediv__(self, other):
        return BinOp("/", wrap(other), self)

    def __neg__(self):
        return BinOp("-", Const(0.0), self)

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


def wrap(value: "Expr | Number") -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value) if isinstance(value, float) else value)
    raise HalideError(f"cannot use {value!r} in a Halide expression")


@dataclass(frozen=True)
class Const(Expr):
    """Numeric literal."""

    value: Number

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A dimension variable of the output domain (Halide ``Var``)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Param(Expr):
    """A scalar pipeline parameter (Halide ``Param<double>``)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Call(Expr):
    """Call to a pure math function (``sqrt``, ``exp``, ``pow``, ``min``...)."""

    func: str
    args: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"{self.func}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class ImageRef(Expr):
    """A read of an input buffer at the given index expressions."""

    image: "ImageParam"
    indices: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return self.indices

    def __repr__(self) -> str:
        idx = ", ".join(map(repr, self.indices))
        return f"{self.image.name}({idx})"


class ImageParam:
    """An input buffer with a fixed number of dimensions."""

    def __init__(self, name: str, dimensions: int):
        if dimensions < 1:
            raise HalideError("an ImageParam needs at least one dimension")
        self.name = name
        self.dimensions = dimensions

    def __call__(self, *indices: "Expr | Number") -> ImageRef:
        if len(indices) != self.dimensions:
            raise HalideError(
                f"{self.name} has {self.dimensions} dimensions, got {len(indices)} indices"
            )
        return ImageRef(self, tuple(wrap(i) for i in indices))

    def __getitem__(self, indices) -> ImageRef:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return self(*indices)

    def __repr__(self) -> str:
        return f"ImageParam({self.name!r}, {self.dimensions})"


class FuncRef(Expr):
    """A reference to another Func's value at an index (producer/consumer chains)."""

    def __init__(self, func: "Func", indices: Tuple[Expr, ...]):
        if func.defined() and len(indices) != func.dimensions:
            raise HalideError(
                f"Func {func.name!r} has {func.dimensions} dimensions, "
                f"got {len(indices)} indices"
            )
        self.func = func
        self.indices = indices

    def children(self) -> Tuple[Expr, ...]:
        return self.indices

    def __repr__(self) -> str:
        idx = ", ".join(map(repr, self.indices))
        return f"{self.func.name}({idx})"


class Func:
    """A pure function from output coordinates to a value.

    Define it by assignment: ``func[x, y] = b(x-1, y) + b(x, y)``.
    """

    _counter = 0

    def __init__(self, name: Optional[str] = None):
        if name is None:
            Func._counter += 1
            name = f"f{Func._counter}"
        self.name = name
        self.vars: Tuple[Var, ...] = ()
        self.definition: Optional[Expr] = None
        from repro.halide.schedule import Schedule

        self.schedule = Schedule()

    # -- definition ----------------------------------------------------------
    def __setitem__(self, vars_, value) -> None:
        if not isinstance(vars_, tuple):
            vars_ = (vars_,)
        if not all(isinstance(v, Var) for v in vars_):
            raise HalideError("Func definitions must be indexed by Var objects")
        names = [v.name for v in vars_]
        if len(set(names)) != len(names):
            raise HalideError("Func definition uses a Var twice")
        self.vars = tuple(vars_)
        self.definition = wrap(value)

    def __getitem__(self, indices) -> FuncRef:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return FuncRef(self, tuple(wrap(i) for i in indices))

    def __call__(self, *indices) -> FuncRef:
        return self[tuple(indices)]

    # -- scheduling ------------------------------------------------------------
    def set_schedule(self, schedule) -> "Func":
        """Attach an execution schedule, validated against the Func's rank."""
        if self.definition is not None:
            schedule.validate(self.dimensions)
        self.schedule = schedule
        return self

    def compute_inline(self) -> "Func":
        """Schedule this stage to be inlined into its consumers (Halide's
        ``compute_inline``); only meaningful for producers in multi-stage
        pipelines."""
        self.schedule = self.schedule.with_inline()
        return self

    # -- introspection ---------------------------------------------------------
    def defined(self) -> bool:
        return self.definition is not None

    @property
    def dimensions(self) -> int:
        return len(self.vars)

    def inputs(self) -> List[ImageParam]:
        if self.definition is None:
            return []
        seen: Dict[str, ImageParam] = {}
        for node in self.definition.walk():
            if isinstance(node, ImageRef) and node.image.name not in seen:
                seen[node.image.name] = node.image
        return list(seen.values())

    def params(self) -> List[Param]:
        if self.definition is None:
            return []
        seen: Dict[str, Param] = {}
        for node in self.definition.walk():
            if isinstance(node, Param) and node.name not in seen:
                seen[node.name] = node
        return list(seen.values())

    def arith_ops(self) -> int:
        """Arithmetic operations per output point (used by the cost models)."""
        if self.definition is None:
            return 0
        ops = 0
        for node in self.definition.walk():
            if isinstance(node, BinOp):
                ops += 1
            elif isinstance(node, Call):
                ops += 4  # transcendental calls cost several flops
        return ops

    def loads_per_point(self) -> int:
        """Input-buffer reads per output point (used by the cost models)."""
        if self.definition is None:
            return 0
        return sum(1 for node in self.definition.walk() if isinstance(node, (ImageRef, FuncRef)))

    def __repr__(self) -> str:
        if self.definition is None:
            return f"Func({self.name!r}, undefined)"
        vars_ = ", ".join(v.name for v in self.vars)
        return f"{self.name}({vars_}) = {self.definition!r}"


def minimum(a, b) -> Expr:
    """Halide's ``min`` intrinsic."""
    return Call("min", (wrap(a), wrap(b)))


def maximum(a, b) -> Expr:
    """Halide's ``max`` intrinsic."""
    return Call("max", (wrap(a), wrap(b)))


def sqrt(a) -> Expr:
    return Call("sqrt", (wrap(a),))


def exp(a) -> Expr:
    return Call("exp", (wrap(a),))


def pow(a, b) -> Expr:  # noqa: A001 - mirrors Halide's name
    return Call("pow", (wrap(a), wrap(b)))
