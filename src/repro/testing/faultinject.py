"""Deterministic fault injection, keyed by an injection spec.

The fault-tolerance layer (:mod:`repro.pipeline.faults`) must be tested
against worker crashes, SIGKILLs, hangs, lock-holder death and torn
writes — failure modes that are miserable to reproduce with real races.
This module injects them *deterministically*: production code calls
:func:`fire` (or :func:`corrupt_file`) at a handful of hook points, and
when ``$REPRO_FAULTS`` names an injection-spec file the matching fault
executes on exactly the configured occurrence.  With the variable unset
— every production run — each hook is one dictionary lookup.

Spec format (JSON)::

    {
      "state_dir": "/tmp/faults-state",
      "faults": [
        {"site": "worker-job", "key": "heat_step", "kind": "kill",
         "occurrences": [1]},
        {"site": "store-file", "kind": "truncate", "occurrences": [1],
         "keep_bytes": 40}
      ]
    }

``site`` names the hook point; ``key`` is a substring match against the
hook's key argument (empty matches everything); ``occurrences`` lists
which firings of this spec actually fault.  Occurrence counters are
allocated as ``O_CREAT | O_EXCL`` marker files under ``state_dir``, so
counting is atomic and *shared across processes*: a job SIGKILLed on
occurrence 1 is retried in a rebuilt pool worker, which observes
occurrence 2 and passes.  That cross-process discipline is what makes
the matrix deterministic — no sleeps, no timing assumptions.

Hook sites wired into production code:

=================== =====================================================
``worker-job``      batch-pool worker entry (key: job name)
``site-lift``       sequential application lifting (key: kernel name)
``lock-acquire``    :class:`~repro.cache.locks.FileLock` before acquiring
``lock-acquired``   just after acquiring (``kill`` here = holder death)
``artifact-publish``:meth:`~repro.cache.artifacts.ArtifactStore.put` entry
``artifact-so``     published ``.so`` (``truncate`` = torn write)
``schedule-publish`` :meth:`~repro.cache.schedules.ScheduleStore.put` entry
``schedule-record`` published tuned-schedule record (``truncate``)
``store-file``      synthesis store file after a save (``truncate``)
``shard-append``    sharded-store append, lock held (key: shard name)
``shard-log``       shard log after an append (``truncate`` = torn tail)
``shard-compact``   before a shard compaction rewrite (key: shard name)
``shard-file``      compacted shard log (``truncate``)
``dedup-handoff``   service result handoff to deduped subscribers
``runlog-append``   service run-log line about to be appended
``toolchain-compile`` :meth:`~repro.native.toolchain.Toolchain.compile`
=================== =====================================================

Fault kinds: ``raise`` (:class:`InjectedFault`), ``kill`` (SIGKILL to
self), ``exit`` (``os._exit(3)``, death without a signal), ``hang``
(block for ``seconds``, relying on the scheduler deadline to kill the
worker), and ``truncate`` (file sites only; keeps ``keep_bytes`` or the
first half of the file).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

ENV_VAR = "REPRO_FAULTS"

KIND_RAISE = "raise"
KIND_KILL = "kill"
KIND_EXIT = "exit"
KIND_HANG = "hang"
KIND_TRUNCATE = "truncate"


class InjectedFault(RuntimeError):
    """The exception a ``raise``-kind fault throws at its hook point."""


@dataclass(frozen=True)
class FaultSpec:
    """One entry of an injection spec."""

    index: int
    site: str
    key: str
    kind: str
    occurrences: Tuple[int, ...]
    seconds: float = 60.0
    keep_bytes: Optional[int] = None

    def matches(self, site: str, key: str) -> bool:
        return self.site == site and (not self.key or self.key in key)


class InjectionPlan:
    """A parsed spec plus the cross-process occurrence counters."""

    def __init__(self, state_dir: "os.PathLike[str] | str", faults: Sequence[FaultSpec]):
        self.state_dir = Path(state_dir)
        self.faults = list(faults)

    @classmethod
    def load(cls, path: "os.PathLike[str] | str") -> "InjectionPlan":
        """Parse a spec file; a broken spec raises loudly, never no-ops."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        faults = [
            FaultSpec(
                index=index,
                site=str(entry["site"]),
                key=str(entry.get("key", "")),
                kind=str(entry["kind"]),
                occurrences=tuple(int(n) for n in entry.get("occurrences", [1])),
                seconds=float(entry.get("seconds", 60.0)),
                keep_bytes=(
                    int(entry["keep_bytes"]) if "keep_bytes" in entry else None
                ),
            )
            for index, entry in enumerate(data.get("faults", []))
        ]
        return cls(data["state_dir"], faults)

    def _occurrence(self, spec: FaultSpec) -> int:
        """Allocate this spec's next occurrence number, atomically.

        The counter is a run of marker files ``fault-<i>.<n>``: the
        first ``n`` whose exclusive create succeeds is ours.  Exclusive
        creation is atomic across processes, so two workers racing the
        same spec observe distinct occurrence numbers.
        """
        self.state_dir.mkdir(parents=True, exist_ok=True)
        base = self.state_dir / f"fault-{spec.index}"
        n = 1
        while True:
            try:
                fd = os.open(f"{base}.{n}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                n += 1
                continue
            os.close(fd)
            return n

    def fire(self, site: str, key: str = "") -> None:
        for spec in self.faults:
            if spec.kind == KIND_TRUNCATE or not spec.matches(site, key):
                continue
            if self._occurrence(spec) in spec.occurrences:
                _execute(spec, site, key)

    def corrupt(self, site: str, key: str, path: "os.PathLike[str] | str") -> bool:
        """Fire a matching ``truncate`` fault against ``path``."""
        for spec in self.faults:
            if spec.kind != KIND_TRUNCATE or not spec.matches(site, key):
                continue
            if self._occurrence(spec) in spec.occurrences:
                _truncate(Path(path), spec.keep_bytes)
                return True
        return False


def _execute(spec: FaultSpec, site: str, key: str) -> None:
    if spec.kind == KIND_RAISE:
        raise InjectedFault(f"injected fault at {site}:{key or '*'}")
    if spec.kind == KIND_KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    if spec.kind == KIND_EXIT:
        os._exit(3)
    if spec.kind == KIND_HANG:
        time.sleep(spec.seconds)
        return
    raise ValueError(f"unknown fault kind {spec.kind!r} at {site}")


def _truncate(path: Path, keep_bytes: Optional[int]) -> None:
    try:
        size = path.stat().st_size
    except OSError:
        return
    keep = size // 2 if keep_bytes is None else min(keep_bytes, size)
    with open(path, "r+b") as handle:
        handle.truncate(keep)


# Plan memo, keyed by the env var's value so tests that repoint
# $REPRO_FAULTS (monkeypatch.setenv) take effect immediately.
_cached: Tuple[Optional[str], Optional[InjectionPlan]] = (None, None)


def _active_plan() -> Optional[InjectionPlan]:
    global _cached
    spec_path = os.environ.get(ENV_VAR)
    if spec_path is None:
        return None
    if _cached[0] != spec_path:
        _cached = (spec_path, InjectionPlan.load(spec_path))
    return _cached[1]


def fire(site: str, key: str = "") -> None:
    """Hook point: execute any matching fault; no-op without a spec."""
    plan = _active_plan()
    if plan is not None:
        plan.fire(site, key)


def corrupt_file(site: str, key: str, path: "os.PathLike[str] | str") -> bool:
    """File hook point: truncate ``path`` when a matching fault fires."""
    plan = _active_plan()
    if plan is None:
        return False
    return plan.corrupt(site, key, path)


def write_spec(
    path: "os.PathLike[str] | str",
    state_dir: "os.PathLike[str] | str",
    faults: Sequence[dict],
) -> Path:
    """Test helper: write a spec file (point ``$REPRO_FAULTS`` at it)."""
    path = Path(path)
    Path(state_dir).mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"state_dir": str(state_dir), "faults": list(faults)}, indent=2),
        encoding="utf-8",
    )
    return path
