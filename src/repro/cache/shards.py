"""Sharded, append-compacted persistence for the synthesis store.

The legacy synthesis store is one JSON file rewritten whole on every
save under a single lock — correct, but every writer serializes on one
file and every save pays O(store).  This module is the many-writer
replacement: entries are distributed over per-shard **append logs** by
fingerprint prefix, so concurrent writers touching different shards
never contend, a save appends only the entries recorded since the last
save, and a torn write can damage at most the final line of one shard.

Layout: a directory of ``shard-<p>.jsonl`` files, ``p`` the
:func:`shard_prefix` of the entry fingerprint (one lowercase hex/alnum
character by default, sixteen-ish shards).  Each line is one record::

    {"fp": "<fingerprint>", "version": "<code version>", "entry": {...}}

Append discipline: records are appended under a per-shard
crash-reclaimable :class:`~repro.cache.locks.FileLock`; a missing
trailing newline (a writer killed mid-append) is healed before the next
append so one torn record never corrupts its successor.  Loads are
line-wise and tolerant: an undecodable line — the torn tail of a killed
append, or mid-file damage — is skipped with a
:class:`~repro.cache.integrity.CacheIntegrityWarning` while every other
record on the shard still loads, so a kill-mid-append leaves the store
*loadable*, not quarantined.

Compaction: appends never remove anything, so a shard accumulates dead
records (same-fingerprint rewrites, stale code versions, damaged
lines).  When a shard's record count crosses
``compact_min_records`` and exceeds ``compact_factor`` times its live
entry count — or the shard carries damaged/stale lines — it is
rewritten in place (temp file + ``os.replace``) under the same
per-shard lock.  :meth:`ShardedStore.compact` forces a full sweep.

Version skew: records carry the code version they were written with;
loads discard other-version records with a
:class:`~repro.cache.integrity.StaleVersionWarning` naming the count —
explicit invalidation, exactly like the legacy store, but per record
instead of per file.

Migration: pointing a :class:`ShardedStore` at a path holding a
*legacy single-JSON store file* imports every entry into shards —
built in a private temp directory, then published with two renames so
no reader ever observes a half-migrated store — and preserves the
original byte-for-byte as ``<path>.migrated``.  Re-opening an
already-migrated store is a no-op, and concurrent openers serialize on
a migration lock, so migration is idempotent.

:func:`shard_prefix`/:func:`shard_path` are shared with the
compiled-artifact and tuned-schedule stores, which bucket their
content-addressed files into ``<root>/<prefix>/`` subdirectories with
per-shard publication locks (same helper, two-character prefix).

Fault-injection hook sites (see :mod:`repro.testing.faultinject`):
``shard-append`` fires before a shard append, ``shard-log`` truncates
the shard after an append (torn tail), ``shard-compact`` fires before
a compaction rewrite, and ``shard-file`` truncates the compacted shard.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.cache.fingerprint import CODE_VERSION
from repro.cache.integrity import (
    CacheIntegrityWarning,
    StaleVersionWarning,
    quarantine_file,
)
from repro.cache.locks import FileLock, LockTimeout
from repro.testing import faultinject

SHARD_FORMAT = "sharded-store-1"

# Characters allowed verbatim in a shard prefix (and therefore in shard
# file/directory names); anything else falls back to a digest prefix.
_SAFE_PREFIX = frozenset("0123456789abcdefghijklmnopqrstuvwxyz")

_STATUS_VALUES = ("verified", "failure")


def shard_prefix(key: str, width: int = 2) -> str:
    """The shard bucket of ``key``: its first ``width`` characters.

    Keys are normally SHA-256 hex digests, so the prefix is uniform and
    filesystem-safe as-is; a key whose leading characters are not safe
    (or which is shorter than ``width``) buckets by digest instead, so
    *every* key deterministically lands somewhere.
    """
    prefix = str(key)[:width].lower()
    if len(prefix) == width and all(c in _SAFE_PREFIX for c in prefix):
        return prefix
    return hashlib.sha256(str(key).encode("utf-8")).hexdigest()[:width]


def shard_path(root: "os.PathLike[str] | str", key: str, width: int = 2) -> Path:
    """The shard directory for ``key`` under ``root`` (not created)."""
    return Path(root) / shard_prefix(key, width)


def read_legacy_store(
    path: "os.PathLike[str] | str",
    code_version: str,
    statuses: Sequence[str] = _STATUS_VALUES,
) -> Dict[str, Dict[str, Any]]:
    """Decode a legacy single-file JSON store.

    Shared by the legacy :class:`~repro.cache.store.SynthesisCache`
    backend and by :class:`ShardedStore` migration.  A missing or
    unreadable file is an empty store; a corrupt file is quarantined
    aside with a :class:`CacheIntegrityWarning`; a version-skewed file
    discards every entry with a :class:`StaleVersionWarning` carrying
    the discarded count (explicit invalidation, not corruption).
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError("store root is not an object")
        entries = data.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError("store entries is not an object")
        decoded = {
            str(fp): entry
            for fp, entry in entries.items()
            if isinstance(entry, dict) and entry.get("status") in statuses
        }
        if data.get("version") != code_version:
            if decoded:
                warnings.warn(
                    f"synthesis store {path.name} was written by code version "
                    f"{data.get('version')!r}; discarding {len(decoded)} stale "
                    f"entries (current version {code_version!r})",
                    StaleVersionWarning,
                    stacklevel=3,
                )
            return {}
        return decoded
    except OSError:
        # Missing or unreadable file: plain cold start.
        return {}
    except ValueError as exc:  # covers JSONDecodeError
        # Torn write or truncation: keep the evidence, degrade to cold.
        quarantine_file(path, f"synthesis store corrupt ({exc})")
        return {}


class ShardedStore:
    """A directory of per-prefix append logs holding store entries.

    Parameters
    ----------
    root:
        The store directory.  If a *file* exists at this path it is
        treated as a legacy single-JSON store and migrated into shards
        (original preserved as ``<root>.migrated``).
    code_version:
        Stamped into every appended record; other-version records are
        discarded on load (with a :class:`StaleVersionWarning`) and
        dropped by compaction.
    lock_timeout:
        Per-shard lock patience.  An append that cannot take its shard
        lock leaves those entries unpersisted (they are returned to the
        caller to retry on the next save) with a warning, never a torn
        file.
    shard_width:
        Prefix characters per shard (1 → 16 shards for hex keys).
    compact_min_records / compact_factor:
        Compaction triggers once a shard holds at least
        ``compact_min_records`` records *and* more than
        ``compact_factor`` records per live entry (or any damaged or
        stale line).
    """

    def __init__(
        self,
        root: "os.PathLike[str] | str",
        code_version: str = CODE_VERSION,
        lock_timeout: float = 10.0,
        shard_width: int = 1,
        compact_min_records: int = 64,
        compact_factor: int = 4,
    ):
        self.root = Path(root)
        self.code_version = code_version
        self.lock_timeout = lock_timeout
        self.shard_width = shard_width
        self.compact_min_records = max(1, compact_min_records)
        self.compact_factor = max(1, compact_factor)
        self.compactions = 0
        self._migrate_legacy_file()

    # ------------------------------------------------------------------
    # Shard naming
    # ------------------------------------------------------------------
    def shard_name(self, key: str) -> str:
        return f"shard-{shard_prefix(key, self.shard_width)}.jsonl"

    def shard_file(self, key: str) -> Path:
        return self.root / self.shard_name(key)

    def shard_files(self) -> "list[Path]":
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("shard-*.jsonl"))

    def _shard_lock(self, path: Path) -> FileLock:
        return FileLock(str(path) + ".lock", timeout=self.lock_timeout)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _decode_shard(self, path: Path) -> Tuple[Dict[str, Dict[str, Any]], int, int, int]:
        """``(entries, records, stale, damaged)`` for one shard log.

        Later records win fingerprint collisions (append order is write
        order).  Undecodable lines are counted as damaged and skipped —
        a torn tail never takes the rest of the shard down with it.
        """
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return {}, 0, 0, 0
        entries: Dict[str, Dict[str, Any]] = {}
        records = stale = damaged = 0
        for line in text.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                fingerprint = record["fp"]
                entry = record["entry"]
                if not isinstance(fingerprint, str) or not isinstance(entry, dict):
                    raise ValueError("malformed shard record")
            except (ValueError, KeyError, TypeError):
                damaged += 1
                continue
            records += 1
            if record.get("version") != self.code_version:
                stale += 1
                continue
            entries[fingerprint] = entry
        return entries, records, stale, damaged

    def load_all(self, warn: bool = True) -> Dict[str, Dict[str, Any]]:
        """Every live entry across every shard.

        With ``warn`` (the default) stale-version and damaged-line
        counts are reported once per load; saves re-read silently.
        """
        merged: Dict[str, Dict[str, Any]] = {}
        stale = damaged = 0
        for path in self.shard_files():
            entries, _records, shard_stale, shard_damaged = self._decode_shard(path)
            merged.update(entries)
            stale += shard_stale
            damaged += shard_damaged
        if warn and stale:
            warnings.warn(
                f"sharded store {self.root.name} holds {stale} entries from "
                f"other code versions; discarded (current {self.code_version!r})",
                StaleVersionWarning,
                stacklevel=3,
            )
        if warn and damaged:
            warnings.warn(
                f"sharded store {self.root.name} had {damaged} undecodable "
                f"log lines (torn appends); skipped, {len(merged)} entries recovered",
                CacheIntegrityWarning,
                stacklevel=3,
            )
        return merged

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _encode_record(self, fingerprint: str, entry: Dict[str, Any]) -> str:
        return json.dumps(
            {"fp": fingerprint, "version": self.code_version, "entry": entry},
            sort_keys=True,
            separators=(",", ":"),
        )

    @staticmethod
    def _heal_torn_tail(path: Path) -> None:
        """Ensure the log ends in a newline before appending after a crash."""
        try:
            with open(path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                torn = handle.read(1) != b"\n"
        except (OSError, ValueError):
            return  # missing or empty file: nothing to heal
        if torn:
            with open(path, "ab") as handle:
                handle.write(b"\n")

    def append(self, entries: Mapping[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
        """Append ``entries`` to their shards; returns the *unpersisted* rest.

        Entries are grouped by shard and each group appended under its
        shard lock.  A shard whose lock is held by a live writer past
        the timeout is skipped with a :class:`CacheIntegrityWarning`
        and its entries come back to the caller (kept dirty for the
        next save) — degrading to "not yet persisted" rather than
        risking an unlocked interleaved write.
        """
        if not entries:
            return {}
        groups: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for fingerprint, entry in entries.items():
            groups.setdefault(self.shard_name(fingerprint), {})[fingerprint] = entry
        leftover: Dict[str, Dict[str, Any]] = {}
        self.root.mkdir(parents=True, exist_ok=True)
        for name in sorted(groups):
            group = groups[name]
            path = self.root / name
            lock = self._shard_lock(path)
            try:
                lock.acquire()
            except (LockTimeout, OSError):
                warnings.warn(
                    f"shard lock busy: kept {len(group)} entries in memory "
                    f"without appending to {name}",
                    CacheIntegrityWarning,
                    stacklevel=3,
                )
                leftover.update(group)
                continue
            try:
                faultinject.fire("shard-append", name)
                self._heal_torn_tail(path)
                lines = "".join(
                    self._encode_record(fp, entry) + "\n"
                    for fp, entry in group.items()
                )
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(lines)
                faultinject.corrupt_file("shard-log", name, path)
                try:
                    self._maybe_compact_locked(path)
                except Exception as exc:
                    # Compaction is an optimization; the append above is
                    # already durable.  A failed rewrite (full disk, an
                    # injected fault) keeps the uncompacted log and
                    # retries on a later append.
                    warnings.warn(
                        f"shard compaction failed for {name}: {exc}; "
                        "keeping the append-only log",
                        CacheIntegrityWarning,
                        stacklevel=3,
                    )
            finally:
                lock.release()
        return leftover

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _maybe_compact_locked(self, path: Path) -> bool:
        """Compact ``path`` (lock already held) when it carries dead weight."""
        try:
            with open(path, "rb") as handle:
                line_count = handle.read().count(b"\n")
        except OSError:
            return False
        if line_count < self.compact_min_records:
            return False
        entries, records, stale, damaged = self._decode_shard(path)
        if stale or damaged or records > self.compact_factor * max(1, len(entries)):
            self._rewrite_locked(path, entries)
            return True
        return False

    def _rewrite_locked(self, path: Path, entries: Dict[str, Dict[str, Any]]) -> None:
        """Atomically replace a shard log with its compacted form."""
        faultinject.fire("shard-compact", path.name)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=str(self.root)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for fingerprint in sorted(entries):
                    handle.write(self._encode_record(fingerprint, entries[fingerprint]) + "\n")
            os.replace(tmp_name, path)
            self.compactions += 1
            faultinject.corrupt_file("shard-file", path.name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def compact(self) -> Dict[str, int]:
        """Force-compact every shard; returns before/after record counts."""
        before = after = shards = 0
        for path in self.shard_files():
            lock = self._shard_lock(path)
            try:
                lock.acquire()
            except (LockTimeout, OSError):
                continue
            try:
                entries, records, _stale, _damaged = self._decode_shard(path)
                before += records
                self._rewrite_locked(path, entries)
                after += len(entries)
                shards += 1
            finally:
                lock.release()
        return {"shards": shards, "records_before": before, "records_after": after}

    def clear(self) -> None:
        """Remove every shard log (each under its lock)."""
        for path in self.shard_files():
            lock = self._shard_lock(path)
            try:
                lock.acquire()
            except (LockTimeout, OSError):
                continue
            try:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            finally:
                lock.release()

    # ------------------------------------------------------------------
    # Legacy migration
    # ------------------------------------------------------------------
    def _migrate_legacy_file(self) -> None:
        """Import a legacy single-JSON store found at ``self.root``.

        The shards are built in a private temp directory, then
        published with two renames: the legacy file moves aside to
        ``<root>.migrated`` (preserved byte-for-byte) and the temp
        directory takes its place.  Concurrent openers serialize on a
        migration lock and re-check, so exactly one migrates; opening
        an already-migrated store is a no-op.
        """
        if not self.root.is_file():
            return
        lock = FileLock(
            str(self.root) + ".migrate.lock", timeout=max(self.lock_timeout, 30.0)
        )
        lock.acquire()
        try:
            if not self.root.is_file():
                return  # another opener migrated while we waited
            entries = read_legacy_store(self.root, self.code_version)
            tmp_dir = Path(
                tempfile.mkdtemp(
                    prefix=self.root.name + ".migrating-", dir=str(self.root.parent)
                )
            )
            try:
                groups: Dict[str, Dict[str, Dict[str, Any]]] = {}
                for fingerprint, entry in entries.items():
                    groups.setdefault(self.shard_name(fingerprint), {})[fingerprint] = entry
                for name, group in groups.items():
                    with open(tmp_dir / name, "w", encoding="utf-8") as handle:
                        for fp in sorted(group):
                            handle.write(self._encode_record(fp, group[fp]) + "\n")
                os.replace(self.root, str(self.root) + ".migrated")
                os.rename(tmp_dir, self.root)
            except OSError:
                try:
                    for stray in tmp_dir.glob("*"):
                        stray.unlink()
                    tmp_dir.rmdir()
                except OSError:
                    pass
                raise
        finally:
            lock.release()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        return len(self.load_all(warn=False))

    def record_count(self) -> int:
        """Total log records across shards (live + stale + rewritten)."""
        total = 0
        for path in self.shard_files():
            _entries, records, _stale, damaged = self._decode_shard(path)
            total += records + damaged
        return total

    def stats(self) -> Dict[str, Any]:
        """JSON-able counters for benchmark/CI publication."""
        return {
            "format": SHARD_FORMAT,
            "root": str(self.root),
            "shards": len(self.shard_files()),
            "entries": self.entry_count(),
            "records": self.record_count(),
            "compactions": self.compactions,
            "generated": time.time(),
        }
