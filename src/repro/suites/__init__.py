"""Benchmark kernel suites (§6.1).

The paper evaluates STNG on StencilMark, NAS MG, CloverLeaf, TERRA,
NFFS-FVM and a set of hand-constructed challenge problems.  Those code
bases are large HPC applications we cannot redistribute, so this package
provides *representative* Fortran kernels for each suite, written from
the paper's descriptions and matching each suite's Table 2 profile
(how many loop nests are flagged, how many are real stencils, how many
are hand-optimised, which need annotations).  Each kernel is a
:class:`~repro.suites.base.KernelCase` carrying its Fortran source plus
the metadata the pipeline and benchmark harness need.
"""

from repro.suites.apps import MiniApp, mini_app, mini_apps
from repro.suites.base import KernelCase, stencil_fortran
from repro.suites.registry import PAPER_TABLE2, all_cases, cases_for_suite, suite_names

__all__ = [
    "KernelCase",
    "MiniApp",
    "PAPER_TABLE2",
    "all_cases",
    "cases_for_suite",
    "mini_app",
    "mini_apps",
    "stencil_fortran",
    "suite_names",
]
