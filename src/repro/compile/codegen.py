"""Source-level code generation: one ``compile()``-ed function per tree.

The closure backend (:mod:`repro.compile.exprcomp`) removes the
per-evaluation tree dispatch but still pays one Python frame per AST
node.  This module goes one step further: an expression or statement
tree is flattened into straight-line Python source — one temporary per
node, the concrete/symbolic dispatch of the ``value_*`` helpers and the
integer fast path of ``require_int`` inlined — and compiled once into a
single code object.  Evaluating a ten-node expression then costs one
frame instead of ten.

Fidelity rules (checked by the equivalence test-suite):

* operands are evaluated in exactly the interpreter's order (temps are
  emitted depth-first, left to right), so lazily-drawn random array
  cells materialise identically;
* every slow or failing path calls the *original* helper
  (``require_int``, ``value_add``, ``_apply_func``, ``compare_values``)
  so coercions, exception types and messages stay bit-identical;
* symbolic operands reach the same ``value_*`` entry points, producing
  the same hash-consed expression nodes.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir import nodes as ir
from repro.semantics.evalexpr import _apply_func
from repro.semantics.exec import ExecutionError
from repro.semantics.numeric import EvalError, compare_values
from repro.predicates.evaluate import GUARD_OPS as _GUARD_OPS, PredicateEvalError
from repro.semantics.state import (
    State,
    require_int,
    value_add,
    value_div,
    value_equal,
    value_mul,
    value_neg,
    value_sub,
)
from repro.symbolic.expr import (
    Add,
    ArrayCell,
    Call,
    Const,
    Div,
    Expr,
    Mul,
    Neg,
    Sub,
    Sym,
    add as expr_add,
    as_expr,
    div as expr_div,
    mul as expr_mul,
    sub as expr_sub,
)

from repro.synthesis.floatmodel import MODULUS as _MOD7_MODULUS, Mod7, _ELEMENTS

_MISS = object()

# Names injected into every generated function's globals.
_BASE_ENV = {
    "_Mod7": Mod7,
    "_M7": _ELEMENTS,
    "Expr": Expr,
    "EvalError": EvalError,
    "ExecutionError": ExecutionError,
    "PredicateEvalError": PredicateEvalError,
    "value_equal": value_equal,
    "Fraction": Fraction,
    "_MISS": _MISS,
    "_apply_func": _apply_func,
    "_as_expr": as_expr,
    "_x_add": expr_add,
    "_x_div": expr_div,
    "_x_mul": expr_mul,
    "_x_sub": expr_sub,
    "compare_values": compare_values,
    "require_int": require_int,
    "value_add": value_add,
    "value_div": value_div,
    "value_mul": value_mul,
    "value_neg": value_neg,
    "value_sub": value_sub,
}


class _Emitter:
    """Accumulates source lines and compile-time constants."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.env: Dict[str, object] = {}
        self._counter = 0

    def temp(self) -> str:
        self._counter += 1
        return f"t{self._counter}"

    def const(self, value) -> str:
        """Bind a compile-time constant; small literals are inlined."""
        if type(value) is int or type(value) is bool:
            return repr(value)
        if type(value) is str:
            return repr(value)
        self._counter += 1
        name = f"k{self._counter}"
        self.env[name] = value
        return name

    def emit(self, line: str, depth: int) -> None:
        self.lines.append("    " * depth + line)

    def build(self, signature: str, tag: str) -> Callable:
        body = self.lines or ["    pass"]
        source = f"def _compiled({signature}):\n" + "\n".join(body)
        namespace = dict(_BASE_ENV)
        namespace.update(self.env)
        exec(compile(source, f"<repro.compile.codegen:{tag}>", "exec"), namespace)
        return namespace["_compiled"]


# ---------------------------------------------------------------------------
# Shared fragments
# ---------------------------------------------------------------------------

def _emit_require_int(em: _Emitter, var: str, context_name: str, depth: int) -> None:
    em.emit(f"if type({var}) is not int:", depth)
    em.emit(f"{var} = require_int({var}, context={context_name})", depth + 1)


def _emit_array_load(
    em: _Emitter, array: str, index_vars: List[str], depth: int
) -> str:
    """Inline ``state.array(name).load(index)`` with its fast paths."""
    arr = em.temp()
    name = em.const(array)
    em.emit(f"{arr} = state.arrays.get({name})", depth)
    em.emit(f"if {arr} is None:", depth)
    em.emit(f"{arr} = state.array({name})", depth + 1)
    idx = em.temp()
    em.emit(f"{idx} = ({', '.join(index_vars)},)", depth)
    out = em.temp()
    em.emit(f"{out} = {arr}.cells.get({idx})", depth)
    em.emit(f"if {out} is None:", depth)
    em.emit(f"{out} = {arr}.default_for({idx})", depth + 1)
    return out


def _emit_binop(em: _Emitter, op: str, left: str, right: str, depth: int) -> str:
    """Inline the concrete/symbolic dispatch of the ``value_*`` helpers.

    The symbolic branches call the smart constructors (``expr.add`` and
    friends) directly — exactly what ``value_add(a, b)`` reduces to via
    the operator sugar — skipping the ``__add__``/``as_expr`` frames.
    """
    out = em.temp()
    ctor = {"+": "_x_add", "-": "_x_sub", "*": "_x_mul", "/": "_x_div"}[op]
    if op in {"+", "-", "*"} and left.startswith("t") and right.startswith("t"):
        # GF(7) fast path: the synthesis float model's field operations
        # reduce to a singleton-table index (``Mod7.__add__`` and friends
        # do exactly this, one frame deeper).  Only runtime temporaries
        # can hold Mod7 values — compile-time constants never do.
        em.emit(f"if type({left}) is _Mod7 and type({right}) is _Mod7:", depth)
        em.emit(
            f"{out} = _M7[({left}.value {op} {right}.value) % {_MOD7_MODULUS}]",
            depth + 1,
        )
        em.emit(f"elif isinstance({left}, Expr):", depth)
    else:
        em.emit(f"if isinstance({left}, Expr):", depth)
    em.emit(f"if isinstance({right}, Expr):", depth + 1)
    em.emit(f"{out} = {ctor}({left}, {right})", depth + 2)
    em.emit("else:", depth + 1)
    em.emit(f"{out} = {ctor}({left}, _as_expr({right}))", depth + 2)
    em.emit(f"elif isinstance({right}, Expr):", depth)
    em.emit(f"{out} = {ctor}(_as_expr({left}), {right})", depth + 1)
    if op == "/":
        em.emit(f"elif isinstance({left}, int) and isinstance({right}, int):", depth)
        em.emit(f"{out} = Fraction({left}, {right})", depth + 1)
        em.emit("else:", depth)
        em.emit(f"{out} = {left} / {right}", depth + 1)
    else:
        em.emit("else:", depth)
        em.emit(f"{out} = {left} {op} {right}", depth + 1)
    return out


def _emit_compare(em: _Emitter, op: str, left: str, right: str, depth: int) -> str:
    """Inline ``compare_values`` for concrete operands."""
    out = em.temp()
    py_op = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==", "/=": "!=", "!=": "!="}.get(op)
    if py_op is None:
        op_name = em.const(op)
        em.emit(f"{out} = compare_values({op_name}, {left}, {right})", depth)
        return out
    em.emit(f"if isinstance({left}, Expr) or isinstance({right}, Expr):", depth)
    op_name = em.const(op)
    em.emit(f"{out} = compare_values({op_name}, {left}, {right})", depth + 1)
    em.emit("else:", depth)
    em.emit(f"{out} = {left} {py_op} {right}", depth + 1)
    return out


def _scalar_missing_message(name: str) -> str:
    # The interpreter wraps the KeyError from State.scalar with
    # EvalError(str(exc)); reproduce that exact text.
    return str(KeyError(f"scalar {name!r} is not bound in this state"))


# ---------------------------------------------------------------------------
# Symbolic predicate expressions
# ---------------------------------------------------------------------------

def _emit_sym_expr(em: _Emitter, expr: Expr, depth: int, fold, scope=None) -> str:
    """Emit evaluation code for a predicate expression.

    ``scope`` maps quantified variable names to the Python loop
    variables of an enclosing generated quantifier nest; names found
    there resolve statically (quantified variables shadow the caller's
    bindings, exactly like the interpreter's merged-dict lookup).
    """
    if fold is not None:
        folded, value = fold(expr)
        if folded:
            return em.const(value)
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, Fraction) and value.denominator == 1:
            value = int(value)
        return em.const(value)
    if isinstance(expr, Sym):
        if scope is not None and expr.name in scope:
            return scope[expr.name]
        out = em.temp()
        name = em.const(expr.name)
        em.emit(f"{out} = bindings.get({name}, _MISS)", depth)
        em.emit(f"if {out} is _MISS:", depth)
        em.emit(f"{out} = state.scalars.get({name}, _MISS)", depth + 1)
        em.emit(f"if {out} is _MISS:", depth + 1)
        em.emit(
            f"raise EvalError({em.const(_scalar_missing_message(expr.name))})",
            depth + 2,
        )
        return out
    if isinstance(expr, ArrayCell):
        context = em.const(f"index of {expr.array}")
        index_vars = []
        for index in expr.indices:
            var = _emit_sym_expr(em, index, depth, fold, scope)
            coerced = em.temp()
            em.emit(f"{coerced} = {var}", depth)
            _emit_require_int(em, coerced, context, depth)
            index_vars.append(coerced)
        return _emit_array_load(em, expr.array, index_vars, depth)
    if isinstance(expr, (Add, Sub, Mul, Div)):
        op = {Add: "+", Sub: "-", Mul: "*", Div: "/"}[type(expr)]
        left = _emit_sym_expr(em, expr.left, depth, fold, scope)
        right = _emit_sym_expr(em, expr.right, depth, fold, scope)
        return _emit_binop(em, op, left, right, depth)
    if isinstance(expr, Neg):
        operand = _emit_sym_expr(em, expr.operand, depth, fold, scope)
        out = em.temp()
        em.emit(f"{out} = -{operand}", depth)
        return out
    if isinstance(expr, Call):
        args = [_emit_sym_expr(em, a, depth, fold, scope) for a in expr.args]
        out = em.temp()
        func = em.const(expr.func)
        em.emit(f"{out} = _apply_func({func}, [{', '.join(args)}])", depth)
        return out
    out = em.temp()
    message = em.const(f"cannot evaluate predicate expression {expr!r}")
    em.emit(f"raise EvalError({message})", depth)
    em.emit(f"{out} = None", depth)  # unreachable; keeps the temp defined
    return out


def gen_sym_fn(expr: Expr, fold=None) -> Callable:
    """Compile a predicate expression into one ``(state, bindings)`` function."""
    em = _Emitter()
    result = _emit_sym_expr(em, expr, 1, fold)
    em.emit(f"return {result}", 1)
    return em.build("state, bindings", "sym")


# ---------------------------------------------------------------------------
# Quantified constraints as single code objects
# ---------------------------------------------------------------------------

def _emit_quantifier_nest(em: _Emitter, bounds, depth: int, fold, scope) -> int:
    """Emit the nested ``for`` loops of a quantifier prefix.

    Each level evaluates its bounds with earlier quantified variables
    in ``scope`` (mirroring the interpreter's left-to-right assignment
    construction) and wraps coercion failures in ``PredicateEvalError``
    exactly like ``predicates.evaluate._bound_range``.  Returns the
    body indentation depth; ``scope`` gains one loop variable per bound.
    """
    for bound in bounds:
        em.emit("try:", depth)
        lower = _emit_sym_expr(em, bound.lower, depth + 1, fold, scope)
        low = em.temp()
        em.emit(f"{low} = {lower}", depth + 1)
        _emit_require_int(em, low, em.const("quantifier lower bound"), depth + 1)
        upper = _emit_sym_expr(em, bound.upper, depth + 1, fold, scope)
        high = em.temp()
        em.emit(f"{high} = {upper}", depth + 1)
        _emit_require_int(em, high, em.const("quantifier upper bound"), depth + 1)
        em.emit("except (EvalError, TypeError) as exc:", depth)
        em.emit("raise PredicateEvalError(str(exc)) from exc", depth + 1)
        loop_var = em.temp()
        start = f"{low} + 1" if bound.lower_strict else low
        stop = high if bound.upper_strict else f"{high} + 1"
        em.emit(f"for {loop_var} in range({start}, {stop}):", depth)
        scope[bound.var] = loop_var
        depth += 1
    return depth


def gen_quantified_fn(constraint, fold=None) -> Callable:
    """Compile ``forall bounds. [guard ->] outEq`` into one function.

    The whole check — bound evaluation, guard, index arithmetic,
    right-hand side, the ``value_equal`` comparison with the
    hash-consing identity shortcut — runs in a single frame; quantified
    variables live in Python loop variables instead of merged binding
    dicts (shadowing semantics are preserved statically).
    """
    em = _Emitter()
    em.emit("if not bindings:", 1)
    em.emit("bindings = {}", 2)
    scope: Dict[str, str] = {}
    depth = _emit_quantifier_nest(em, constraint.bounds, 1, fold, scope)

    guard = constraint.guard
    if guard is not None:
        if isinstance(guard, Call) and guard.func in _GUARD_OPS and len(guard.args) == 2:
            left = _emit_sym_expr(em, guard.args[0], depth, fold, scope)
            right = _emit_sym_expr(em, guard.args[1], depth, fold, scope)
            taken = em.temp()
            em.emit("try:", depth)
            op = em.const(_GUARD_OPS[guard.func])
            em.emit(f"{taken} = compare_values({op}, {left}, {right})", depth + 1)
            em.emit("except EvalError as exc:", depth)
            em.emit("raise PredicateEvalError(str(exc)) from exc", depth + 1)
            em.emit(f"if not {taken}:", depth)
            # With no quantifier loops the body runs once; a false guard
            # simply means the (single) implication holds.
            em.emit("continue" if constraint.bounds else "return True", depth + 1)
        else:
            message = em.const(f"unsupported guard expression {guard!r}")
            em.emit(f"raise PredicateEvalError({message})", depth)

    out_eq = constraint.out_eq
    actual = em.temp()
    expected = em.temp()
    em.emit("try:", depth)
    context = em.const(f"index of {out_eq.array}")
    index_vars = []
    for index in out_eq.indices:
        var = _emit_sym_expr(em, index, depth + 1, fold, scope)
        coerced = em.temp()
        em.emit(f"{coerced} = {var}", depth + 1)
        _emit_require_int(em, coerced, context, depth + 1)
        index_vars.append(coerced)
    loaded = _emit_array_load(em, out_eq.array, index_vars, depth + 1)
    em.emit(f"{actual} = {loaded}", depth + 1)
    rhs = _emit_sym_expr(em, out_eq.rhs, depth + 1, fold, scope)
    em.emit(f"{expected} = {rhs}", depth + 1)
    em.emit("except (EvalError, TypeError) as exc:", depth)
    em.emit("raise PredicateEvalError(str(exc)) from exc", depth + 1)
    em.emit(
        f"if {actual} is not {expected} and not value_equal({actual}, {expected}):",
        depth,
    )
    em.emit("return False", depth + 1)
    em.emit("return True", 1)
    return em.build("state, bindings=None", "quant")


def gen_conjunct_store_fn(conjunct, fold=None) -> Callable:
    """Compile one invariant conjunct into a single storing function.

    The compiled twin of the conjunct loop in
    ``BoundedVerifier._instantiate_invariant``: every assignment's
    right-hand side is stored into the output array.  Index coercion
    uses the default ``require_int`` context, and evaluation errors
    propagate raw for the caller to absorb, exactly as interpreted.
    """
    em = _Emitter()
    em.emit("if not bindings:", 1)
    em.emit("bindings = {}", 2)
    scope: Dict[str, str] = {}
    depth = _emit_quantifier_nest(em, conjunct.bounds, 1, fold, scope)
    out_eq = conjunct.out_eq
    context = em.const("index")
    index_vars = []
    for index in out_eq.indices:
        var = _emit_sym_expr(em, index, depth, fold, scope)
        coerced = em.temp()
        em.emit(f"{coerced} = {var}", depth)
        _emit_require_int(em, coerced, context, depth)
        index_vars.append(coerced)
    value = _emit_sym_expr(em, out_eq.rhs, depth, fold, scope)
    name = em.const(out_eq.array)
    arr = em.temp()
    em.emit(f"{arr} = state.arrays.get({name})", depth)
    em.emit(f"if {arr} is None:", depth)
    em.emit(f"{arr} = state.array({name})", depth + 1)
    em.emit(f"{arr}.cells[({', '.join(index_vars)},)] = {value}", depth)
    return em.build("state, bindings=None", "store")


# ---------------------------------------------------------------------------
# IR expressions
# ---------------------------------------------------------------------------

def _emit_ir_expr(em: _Emitter, expr: ir.ValueExpr, depth: int, fold) -> str:
    if fold is not None:
        folded, value = fold(expr)
        if folded:
            return em.const(value)
    if isinstance(expr, (ir.IntConst, ir.RealConst)):
        return em.const(expr.value)
    if isinstance(expr, ir.VarRef):
        out = em.temp()
        name = em.const(expr.name)
        em.emit(f"{out} = state.scalars.get({name}, _MISS)", depth)
        em.emit(f"if {out} is _MISS:", depth)
        em.emit(
            f"raise EvalError({em.const(_scalar_missing_message(expr.name))})",
            depth + 1,
        )
        return out
    if isinstance(expr, ir.ArrayLoad):
        context = em.const(f"index of {expr.array}")
        index_vars = []
        for index in expr.indices:
            var = _emit_ir_expr(em, index, depth, fold)
            coerced = em.temp()
            em.emit(f"{coerced} = {var}", depth)
            _emit_require_int(em, coerced, context, depth)
            index_vars.append(coerced)
        return _emit_array_load(em, expr.array, index_vars, depth)
    if isinstance(expr, ir.BinOp):
        if expr.op not in {"+", "-", "*", "/"}:
            left = _emit_ir_expr(em, expr.left, depth, fold)
            right = _emit_ir_expr(em, expr.right, depth, fold)
            out = em.temp()
            message = em.const(f"unknown binary operator {expr.op!r}")
            em.emit(f"raise EvalError({message})", depth)
            em.emit(f"{out} = None", depth)
            return out
        left = _emit_ir_expr(em, expr.left, depth, fold)
        right = _emit_ir_expr(em, expr.right, depth, fold)
        return _emit_binop(em, expr.op, left, right, depth)
    if isinstance(expr, ir.UnaryOp):
        operand = _emit_ir_expr(em, expr.operand, depth, fold)
        if expr.op != "-":
            return operand
        out = em.temp()
        em.emit(f"{out} = -{operand}", depth)
        return out
    if isinstance(expr, ir.FuncCall):
        args = [_emit_ir_expr(em, a, depth, fold) for a in expr.args]
        out = em.temp()
        func = em.const(expr.func)
        em.emit(f"{out} = _apply_func({func}, [{', '.join(args)}])", depth)
        return out
    if isinstance(expr, ir.Compare):
        return _emit_ir_condition(em, expr, depth, fold)
    out = em.temp()
    message = em.const(f"cannot evaluate IR expression {expr!r}")
    em.emit(f"raise EvalError({message})", depth)
    em.emit(f"{out} = None", depth)
    return out


def _emit_ir_condition(em: _Emitter, expr: ir.ValueExpr, depth: int, fold) -> str:
    if isinstance(expr, ir.Compare):
        left = _emit_ir_expr(em, expr.left, depth, fold)
        right = _emit_ir_expr(em, expr.right, depth, fold)
        return _emit_compare(em, expr.op, left, right, depth)
    value = _emit_ir_expr(em, expr, depth, fold)
    out = em.temp()
    em.emit(f"if isinstance({value}, Expr):", depth)
    em.emit(
        f"raise EvalError({em.const('condition evaluated to a symbolic value')})",
        depth + 1,
    )
    em.emit(f"{out} = bool({value})", depth)
    return out


def gen_ir_fn(expr: ir.ValueExpr, fold=None) -> Callable:
    """Compile an IR value expression into one ``(state,)`` function."""
    em = _Emitter()
    result = _emit_ir_expr(em, expr, 1, fold)
    em.emit(f"return {result}", 1)
    return em.build("state", "ir")


def gen_ir_condition_fn(expr: ir.ValueExpr, fold=None) -> Callable:
    """Compile an IR condition into one ``(state,)`` boolean function."""
    em = _Emitter()
    result = _emit_ir_condition(em, expr, 1, fold)
    em.emit(f"return {result}", 1)
    return em.build("state", "cond")


# ---------------------------------------------------------------------------
# IR statements (plain execution and snapshotting collector)
# ---------------------------------------------------------------------------

from repro.semantics.exec import MAX_ITERATIONS as _MAX_ITERATIONS


def _emit_stmt(em: _Emitter, stmt: ir.Stmt, depth: int, fold, snapshot: bool) -> None:
    if isinstance(stmt, ir.Block):
        for inner in stmt.statements:
            _emit_stmt(em, inner, depth, fold, snapshot)
        return
    if snapshot and not isinstance(stmt, ir.Loop):
        # The collector only treats blocks and loops specially; any other
        # statement runs through plain execution semantics (conditionals
        # containing loops regain the iteration budget, exactly as the
        # interpreted collector delegates to ``execute_statement``).
        _emit_stmt(em, stmt, depth, fold, snapshot=False)
        return
    if isinstance(stmt, ir.Assign):
        value = _emit_ir_expr(em, stmt.value, depth, fold)
        em.emit(f"state.scalars[{em.const(stmt.target)}] = {value}", depth)
        return
    if isinstance(stmt, ir.ArrayStore):
        context = em.const(f"store index of {stmt.array}")
        index_vars = []
        for index in stmt.indices:
            var = _emit_ir_expr(em, index, depth, fold)
            coerced = em.temp()
            em.emit(f"{coerced} = {var}", depth)
            _emit_require_int(em, coerced, context, depth)
            index_vars.append(coerced)
        value = _emit_ir_expr(em, stmt.value, depth, fold)
        name = em.const(stmt.array)
        arr = em.temp()
        em.emit(f"{arr} = state.arrays.get({name})", depth)
        em.emit(f"if {arr} is None:", depth)
        em.emit(f"{arr} = state.array({name})", depth + 1)
        em.emit(f"{arr}.cells[({', '.join(index_vars)},)] = {value}", depth)
        return
    if isinstance(stmt, ir.Loop):
        if stmt.step == 0:
            message = em.const("loop step must be non-zero")
            em.emit(f"raise ExecutionError({message})", depth)
            return
        counter = em.const(stmt.counter)
        lower = _emit_ir_expr(em, stmt.lower, depth, fold)
        value = em.temp()
        em.emit(f"{value} = {lower}", depth)
        upper = _emit_ir_expr(em, stmt.upper, depth, fold)
        bound = em.temp()
        em.emit(f"{bound} = {upper}", depth)
        if snapshot:
            # The reachable-state collector coerces with the default
            # context and applies no iteration budget.
            _emit_require_int(em, value, em.const("index"), depth)
            _emit_require_int(em, bound, em.const("index"), depth)
        else:
            _emit_require_int(em, value, em.const("loop lower bound"), depth)
            _emit_require_int(em, bound, em.const("loop upper bound"), depth)
            iterations = em.temp()
            em.emit(f"{iterations} = 0", depth)
        loop_op = ">=" if stmt.step < 0 else "<="
        em.emit(f"while {value} {loop_op} {bound}:", depth)
        em.emit(f"state.scalars[{counter}] = {value}", depth + 1)
        if snapshot:
            em.emit("snapshot(state)", depth + 1)
        _emit_stmt(em, stmt.body, depth + 1, fold, snapshot)
        em.emit(f"{value} += {stmt.step}", depth + 1)
        if not snapshot:
            em.emit(f"{iterations} += 1", depth + 1)
            em.emit(f"if {iterations} > {_MAX_ITERATIONS}:", depth + 1)
            overflow = em.const(
                f"loop over {stmt.counter!r} exceeded {_MAX_ITERATIONS} iterations"
            )
            em.emit(f"raise ExecutionError({overflow})", depth + 2)
        em.emit(f"state.scalars[{counter}] = {value}", depth)
        if snapshot:
            em.emit("snapshot(state)", depth)
        return
    if isinstance(stmt, ir.If):
        cond = em.temp()
        em.emit("try:", depth)
        inner = _emit_ir_condition(em, stmt.condition, depth + 1, fold)
        em.emit(f"{cond} = {inner}", depth + 1)
        em.emit("except EvalError as exc:", depth)
        em.emit(
            "raise ExecutionError(f'cannot execute conditional: {exc}') from exc",
            depth + 1,
        )
        em.emit(f"if {cond}:", depth)
        _emit_stmt(em, stmt.then_body, depth + 1, fold, snapshot)
        if stmt.else_body is not None:
            em.emit("else:", depth)
            _emit_stmt(em, stmt.else_body, depth + 1, fold, snapshot)
        return
    em.emit(f"raise ExecutionError({em.const(f'cannot execute statement {stmt!r}')})", depth)


def gen_stmt_fn(stmt: ir.Stmt, fold=None) -> Callable:
    """Compile a statement tree into one ``(state,)`` in-place executor."""
    em = _Emitter()
    _emit_stmt(em, stmt, 1, fold, snapshot=False)
    return em.build("state", "stmt")


def gen_collector_fn(stmt: ir.Stmt, fold=None) -> Callable:
    """Compile a kernel body into a ``(state, snapshot)`` collector executor."""
    em = _Emitter()
    _emit_stmt(em, stmt, 1, fold, snapshot=True)
    return em.build("state, snapshot", "collect")
