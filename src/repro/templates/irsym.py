"""Conversion of IR value expressions into symbolic predicate expressions.

Loop bounds, write-site indices and annotation expressions all live in
the IR; the predicate language and the invariant builder work over
symbolic expressions.  The conversion is purely structural: variables
become symbols, intrinsic calls become uninterpreted calls (``min`` and
``max`` keep their names so the predicate evaluator can interpret them
over concrete indices).
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.symbolic.expr import Expr, as_expr, call, cell, const, sym


class ConversionError(Exception):
    """Raised when an IR expression has no predicate-language counterpart."""


def ir_to_sym(expr: ir.ValueExpr) -> Expr:
    """Convert an IR value expression to a symbolic expression."""
    if isinstance(expr, ir.IntConst):
        return const(expr.value)
    if isinstance(expr, ir.RealConst):
        return as_expr(expr.value)
    if isinstance(expr, ir.VarRef):
        return sym(expr.name)
    if isinstance(expr, ir.ArrayLoad):
        return cell(expr.array, *[ir_to_sym(i) for i in expr.indices])
    if isinstance(expr, ir.BinOp):
        left = ir_to_sym(expr.left)
        right = ir_to_sym(expr.right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
        raise ConversionError(f"unknown binary operator {expr.op!r}")
    if isinstance(expr, ir.UnaryOp):
        operand = ir_to_sym(expr.operand)
        return -operand if expr.op == "-" else operand
    if isinstance(expr, ir.FuncCall):
        return call(expr.func, *[ir_to_sym(a) for a in expr.args])
    raise ConversionError(f"cannot convert IR expression {expr!r}")
