"""The schedule search space.

A schedule for an N-dimensional stencil chooses: whether and which
dimension to parallelise, per-dimension tile sizes (powers of two, or
untiled), the SIMD width of the innermost dimension, an unroll factor
and a traversal order.  The space is the cartesian product of those
choices — far too large to enumerate for realistic stencils, which is
why the tuner searches it stochastically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.halide.schedule import Schedule


TILE_CHOICES: Tuple[int, ...] = (0, 8, 16, 32, 64, 128)
VECTOR_CHOICES: Tuple[int, ...] = (1, 2, 4, 8)
UNROLL_CHOICES: Tuple[int, ...] = (1, 2, 4)


@dataclass
class ScheduleSpace:
    """The space of schedules for one Func of a given dimensionality."""

    dimensions: int

    def size(self) -> int:
        parallel = self.dimensions + 1
        tiles = len(TILE_CHOICES) ** self.dimensions
        orders = _factorial(self.dimensions)
        return parallel * tiles * len(VECTOR_CHOICES) * len(UNROLL_CHOICES) * orders

    # -- sampling -----------------------------------------------------------
    def random_schedule(self, rng: random.Random) -> Schedule:
        parallel_dim: Optional[int] = rng.choice([None] + list(range(self.dimensions)))
        tiles = tuple(rng.choice(TILE_CHOICES) for _ in range(self.dimensions))
        vector = rng.choice(VECTOR_CHOICES)
        unroll = rng.choice(UNROLL_CHOICES)
        order = list(range(self.dimensions))
        if rng.random() < 0.3:
            rng.shuffle(order)
        schedule = Schedule(
            parallel_dim=parallel_dim,
            tile_sizes=tiles,
            vector_width=vector,
            unroll=unroll,
            dim_order=tuple(order),
        )
        schedule.validate(self.dimensions)
        return schedule

    def sample_schedules(self, count: int, seed: int = 0) -> List[Schedule]:
        """A deterministic sample of ``count`` random schedules.

        Used by the differential test-suites to sweep the space: every
        sampled schedule must execute bit-identically to the
        schedule-blind reference.
        """
        rng = random.Random(seed)
        return [self.random_schedule(rng) for _ in range(count)]

    def signature(self) -> str:
        """Identity of the search space, for tuned-schedule cache keys.

        Covers the dimensionality and every choice axis: widening (or
        narrowing) any axis changes the signature, so cached winners
        found in a differently-shaped space are never reused.
        """
        return (
            f"dims={self.dimensions};tiles={TILE_CHOICES};"
            f"vector={VECTOR_CHOICES};unroll={UNROLL_CHOICES}"
        )

    def default_schedule(self) -> Schedule:
        return Schedule.default()

    def sensible_schedule(self) -> Schedule:
        """A reasonable hand-written starting point (parallel outer, vector inner)."""
        return Schedule.baseline_parallel(self.dimensions)

    # -- neighbourhood -------------------------------------------------------
    def mutate(self, schedule: Schedule, rng: random.Random) -> Schedule:
        """Change one coordinate of the schedule at random."""
        choice = rng.randrange(5)
        if choice == 0:
            return schedule.with_parallel(rng.randrange(self.dimensions)) if self.dimensions else schedule
        if choice == 1:
            tiles = list(schedule.tile_sizes or (0,) * self.dimensions)
            if tiles:
                index = rng.randrange(len(tiles))
                tiles[index] = rng.choice(TILE_CHOICES)
            return schedule.with_tiles(tuple(tiles))
        if choice == 2:
            return schedule.with_vectorize(rng.choice(VECTOR_CHOICES))
        if choice == 3:
            return schedule.with_unroll(rng.choice(UNROLL_CHOICES))
        order = list(schedule.dim_order or range(self.dimensions))
        if len(order) >= 2:
            a, b = rng.sample(range(len(order)), 2)
            order[a], order[b] = order[b], order[a]
        return schedule.with_order(tuple(order))


def _factorial(n: int) -> int:
    result = 1
    for value in range(2, n + 1):
        result *= value
    return result
