"""Analytical performance models for the evaluation (§6.1, §6.3–§6.5).

The paper's Table 1 compares, per kernel: the original Fortran built
with gfortran (the baseline all speedups are relative to), the original
built with ``ifort -parallel`` (auto-parallelisation), the regenerated
clean C built with ``ifort -parallel`` (the deoptimization experiment),
the lifted summary compiled by Halide and autotuned on a 24-core node,
and the Halide GPU backend with and without PCIe transfer time.

We cannot run those toolchains offline, so this package models them:
a roofline-style node model (:mod:`repro.perfmodel.machine`), compiler
behaviour models that capture *why* the paper's ratios look the way
they do (:mod:`repro.perfmodel.compiler`) — auto-parallelisers succeed
on clean affine nests and collapse on hand-tiled non-affine code, Halide
with autotuning exploits cores, vectors and locality — and a per-kernel
workload characterisation (:mod:`repro.perfmodel.workload`).
"""

from repro.perfmodel.machine import GPU_K80, MachineModel, XEON_NODE, fit_parallel_fraction
from repro.perfmodel.workload import KernelWorkload, workload_from_func, workload_from_kernel
from repro.perfmodel.compiler import (
    CompilerModel,
    GFORTRAN,
    HALIDE_CPU,
    IFORT_PARALLEL,
    estimate_runtime,
)

__all__ = [
    "CompilerModel",
    "GFORTRAN",
    "GPU_K80",
    "HALIDE_CPU",
    "IFORT_PARALLEL",
    "KernelWorkload",
    "MachineModel",
    "XEON_NODE",
    "estimate_runtime",
    "fit_parallel_fraction",
    "workload_from_func",
    "workload_from_kernel",
]
