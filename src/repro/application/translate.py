"""Whole-application translation: lift every site, bundle the artifacts.

``translate_application`` runs the full STNG story over a
multi-procedure program: scan every procedure for candidate loop nests,
lift all candidates — in parallel through the batch scheduler when a
pool is requested, always through the content-addressed synthesis cache
when one is supplied — and package the result as an
:class:`ApplicationBundle`: per-kernel Halide C++ (from ``cppgen``
via the backend), Fortran glue (from ``gluegen``), and a manifest
recording spans, outcomes and verification levels.  The bundle is what
the differential executor (:mod:`repro.application.execute`) runs.

Graceful degradation: a site whose lift *crashes*, hangs past the
scheduler deadline or exhausts its retry budget does not abort the
translation — it demotes to an interpreted fallback (``kind:
"lift-failure"`` in the manifest, with the classified reason), exactly
like a site the scanner rejected up front.  Whole-application
translation therefore always completes, and the resulting bundle still
passes :func:`~repro.application.execute.differential_check` bitwise,
because fallback sites execute the original Fortran semantics.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.application.scan import ApplicationScan, LoopSite, scan_application
from repro.backend.gluegen import bound_to_fortran
from repro.frontend.ast import Program
from repro.frontend.parser import parse_source
from repro.halide.schedule import Schedule
from repro.pipeline.faults import (
    CAUSE_EXCEPTION,
    FaultPolicy,
    JobAttempt,
    JobFailure,
    failure_report,
    format_traceback,
)
from repro.pipeline.report import verification_level_counts
from repro.pipeline.scheduler import BatchScheduler, KernelJob
from repro.pipeline.stng import KernelOutcome, KernelReport, PipelineOptions, STNGPipeline
from repro.suites.apps import MiniApp
from repro.testing import faultinject


@dataclass
class TranslatedKernel:
    """One substituted loop site: the site, its lift, and how to run it."""

    site: LoopSite
    report: KernelReport

    @property
    def name(self) -> str:
        return self.site.name

    @property
    def stencils(self):
        return self.report.stencils

    @property
    def verification_level(self) -> Optional[str]:
        return self.report.verification_level

    @property
    def schedule(self) -> Optional[Schedule]:
        """The measured-autotuned schedule, when the pipeline ran in
        ``measure`` mode; ``None`` realizes under the default schedule."""
        performance = self.report.performance
        if performance is not None and performance.measured is not None:
            return performance.measured.schedule
        return None


@dataclass
class FallbackSite:
    """A loop site the translated program interprets instead of substituting.

    ``kind`` distinguishes *why* the site degraded: ``"unliftable"``
    (the scanner rejected it up front), ``"untranslated"`` (lifting ran
    but produced no verified summary), or ``"lift-failure"`` (the lift
    itself crashed, hung, or exhausted its fault-policy retries — the
    site is semantically fine, the infrastructure failed).
    """

    site: LoopSite
    reason: str
    kind: str = "unliftable"


@dataclass
class ApplicationBundle:
    """Everything the translated application consists of."""

    name: str
    driver: str
    source: str
    program: Program
    scan: ApplicationScan
    translated: List[TranslatedKernel] = field(default_factory=list)
    fallbacks: List[FallbackSite] = field(default_factory=list)
    app: Optional[MiniApp] = None
    cache_hits: int = 0
    cache_misses: int = 0
    translate_seconds: float = 0.0

    @property
    def sites_total(self) -> int:
        return len(self.scan.sites)

    def manifest(self) -> Dict:
        """The JSON-able description of the bundle (spans, levels, artifacts)."""
        kernels = []
        for tk in self.translated:
            stencils = []
            for stencil in tk.stencils:
                stencils.append(
                    {
                        "output": stencil.array,
                        "func": stencil.func.name,
                        "inputs": list(stencil.input_arrays),
                        "scalar_params": list(stencil.scalar_params),
                        "domain": [
                            [bound_to_fortran(lower), bound_to_fortran(upper)]
                            for lower, upper in stencil.domain_bounds
                        ],
                    }
                )
            schedule = tk.schedule
            kernels.append(
                {
                    "name": tk.name,
                    "procedure": tk.site.procedure,
                    "span": [tk.site.start, tk.site.end],
                    "verification_level": tk.verification_level,
                    "schedule": schedule.describe() if schedule is not None else "default",
                    "stencils": stencils,
                    "artifacts": {
                        "halide_cpp": [
                            f"{tk.name}_{index}.halide.cpp"
                            for index in range(len(tk.stencils))
                        ],
                        "fortran_glue": f"{tk.name}_glue.f90",
                    },
                }
            )
        fallbacks = [
            {
                "procedure": fb.site.procedure,
                "span": [fb.site.start, fb.site.end],
                "reason": fb.reason,
                "kind": fb.kind,
            }
            for fb in self.fallbacks
        ]
        from repro.analysis.lint import classify_demotion

        # Scanner rejections bucket by *why* the static analysis said no
        # (scalar-observability / lowering / filter); infrastructure
        # demotions keep their kind so a crash never masquerades as an
        # analysis limitation.
        demotion_reasons: Dict[str, int] = {}
        for fb in self.fallbacks:
            bucket = (
                classify_demotion([fb.reason])
                if fb.kind == "unliftable"
                else fb.kind
            )
            demotion_reasons[bucket] = demotion_reasons.get(bucket, 0) + 1
        return {
            "application": self.name,
            "driver": self.driver,
            "kernels": kernels,
            "fallbacks": fallbacks,
            "counts": {
                "sites": self.sites_total,
                "translated": len(self.translated),
                "fallback": len(self.fallbacks),
                "demotion_reasons": demotion_reasons,
                "verification_levels": verification_level_counts(
                    [tk.report for tk in self.translated]
                ),
            },
        }

    def write_artifacts(self, directory: Union[str, Path]) -> List[Path]:
        """Write the Halide C++, Fortran glue and manifest to ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        for tk in self.translated:
            for index, stencil in enumerate(tk.stencils):
                path = directory / f"{tk.name}_{index}.halide.cpp"
                path.write_text(stencil.cpp_source)
                written.append(path)
            if tk.report.glue_code is not None:
                path = directory / f"{tk.name}_glue.f90"
                path.write_text(tk.report.glue_code)
                written.append(path)
        manifest_path = directory / "manifest.json"
        manifest_path.write_text(json.dumps(self.manifest(), indent=2, sort_keys=True) + "\n")
        written.append(manifest_path)
        return written


def translate_application(
    app: Union[MiniApp, str],
    options: Optional[PipelineOptions] = None,
    cache=None,
    pool_size: int = 1,
    driver: Optional[str] = None,
    name: Optional[str] = None,
    fault_policy: Optional[FaultPolicy] = None,
    progress: Optional[Callable[[str, Dict], None]] = None,
) -> ApplicationBundle:
    """Translate a whole program: scan, lift everything, bundle.

    ``app`` is a bundled :class:`MiniApp` or raw Fortran source (then
    ``driver`` names the entry procedure).  ``pool_size > 1`` fans the
    lifts over the batch scheduler's process pool; either way every
    lift goes through ``cache`` when one is supplied, so a warm re-run
    of the same application performs no synthesis at all.
    ``fault_policy`` governs crash/hang containment (see
    :class:`~repro.pipeline.faults.FaultPolicy`); a site whose lift
    fails terminally degrades to an interpreted fallback rather than
    aborting the translation.

    ``progress``, when supplied, is called as ``progress(phase,
    detail)`` after each pipeline phase completes — ``"scan"``,
    ``"lift"``, ``"prove"``, ``"translate"``, in that order, with a
    JSON-able detail dict — so a caller (the lifting service streams
    these to its clients) can report where a translation is.  The
    callback runs on the translating thread; exceptions it raises
    propagate.
    """
    started = time.perf_counter()

    def emit(phase: str, detail: Dict) -> None:
        if progress is not None:
            progress(phase, detail)

    if isinstance(app, MiniApp):
        source = app.source
        driver = app.driver if driver is None else driver
        name = app.name if name is None else name
        mini = app
    else:
        source = app
        mini = None
        if driver is None:
            raise ValueError("translate_application needs `driver` for raw source")
        name = name or driver
    options = options or PipelineOptions()

    program = parse_source(source)
    scan = scan_application(program)
    liftable = scan.liftable_sites
    emit(
        "scan",
        {
            "application": name,
            "sites": len(scan.sites),
            "liftable": len(liftable),
            "unliftable": len(scan.fallback_sites),
        },
    )

    if pool_size > 1:
        scheduler = BatchScheduler(
            options, pool_size=pool_size, cache=cache, fault_policy=fault_policy
        )
        jobs = [
            KernelJob(index=index, kernel=site.kernel)
            for index, site in enumerate(liftable)
        ]
        batch = scheduler.lift_kernels(jobs)
        reports = batch.reports
        hits, misses = batch.cache_hits, batch.cache_misses
    else:
        reports, hits, misses = _lift_sequential(liftable, options, cache)
    emit(
        "lift",
        {
            "reports": len(reports),
            "lifted": sum(1 for r in reports if r.translated and r.stencils),
            "cache_hits": hits,
            "cache_misses": misses,
        },
    )
    emit(
        "prove",
        {
            "verification_levels": verification_level_counts(
                [r for r in reports if r.translated and r.stencils]
            ),
        },
    )

    bundle = ApplicationBundle(
        name=name,
        driver=driver,
        source=source,
        program=program,
        scan=scan,
        app=mini,
        cache_hits=hits,
        cache_misses=misses,
    )
    for site, report in zip(liftable, reports):
        if report.translated and report.stencils:
            bundle.translated.append(TranslatedKernel(site=site, report=report))
        else:
            reason = report.failure_reason or "no generated stencils"
            kind = (
                "lift-failure"
                if report.outcome is KernelOutcome.LIFT_FAILED
                else "untranslated"
            )
            bundle.fallbacks.append(FallbackSite(site=site, reason=reason, kind=kind))
    for site in scan.fallback_sites:
        bundle.fallbacks.append(FallbackSite(site=site, reason="; ".join(site.reasons)))
    bundle.translate_seconds = time.perf_counter() - started
    emit(
        "translate",
        {
            "translated": len(bundle.translated),
            "fallback": len(bundle.fallbacks),
            "seconds": bundle.translate_seconds,
        },
    )
    return bundle


def _lift_sequential(sites: List[LoopSite], options: PipelineOptions, cache):
    """In-process lift of every liftable site (no pool start-up cost).

    A site whose lift raises is contained: it yields a ``LIFT_FAILED``
    report (one attempt — there is no retry budget in-process, the
    failure is deterministic) and the remaining sites still lift.  The
    cache saves in ``finally`` so completed sites' entries survive even
    a failure that propagates (e.g. ``KeyboardInterrupt``).
    """
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    pipeline = STNGPipeline(options, cache=cache)
    reports: List[KernelReport] = []
    try:
        for index, site in enumerate(sites):
            kernel_name = getattr(site.kernel, "name", "")
            try:
                faultinject.fire("site-lift", kernel_name)
                reports.append(pipeline.lift_kernel(site.kernel))
            except Exception as exc:
                attempt = JobAttempt(
                    attempt=1,
                    cause=CAUSE_EXCEPTION,
                    message=str(exc) or type(exc).__name__,
                    traceback=format_traceback(exc),
                )
                failure = JobFailure(index=index, name=kernel_name, attempts=(attempt,))
                reports.append(failure_report(failure))
    finally:
        if cache is not None:
            cache.save()
    hits = (cache.hits - hits_before) if cache is not None else 0
    misses = (cache.misses - misses_before) if cache is not None else 0
    return reports, hits, misses
