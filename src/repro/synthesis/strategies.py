"""Synthesis strategies (§4.5).

For each stencil STNG generates multiple synthesis problems with
different optimisation strategies and runs them all, keeping any that
verify.  Our strategies transform the template set before the candidate
space is built:

* ``default`` — the space exactly as template generation produced it;
* ``cross`` — index holes are restricted to "cross" (axis-aligned)
  offsets from the output point;
* ``box`` — index holes are restricted to offsets within a small box
  around the output point;
* ``perfect_nest`` — only applicable to perfectly nested kernels; drops
  the scalar-equality search entirely (perfect nests have no rotating
  temporaries), shrinking the space.

A strategy may be inapplicable to a kernel (it returns ``None``), and a
strategy that over-prunes simply produces candidates that fail
verification — exactly the failure mode the paper tolerates because the
full verifier backstops every strategy.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.ir import nodes as ir
from repro.ir.analysis import is_perfect_nest
from repro.symbolic.expr import Const, Expr, Sym
from repro.symbolic.simplify import collect_affine, simplify
from repro.templates.generator import ArrayTemplate, HoleSpace, TemplateSet


@dataclass
class Strategy:
    """A named transformation of the template set."""

    name: str
    transform: Callable[[ir.Kernel, TemplateSet], Optional[TemplateSet]]

    def apply(self, kernel: ir.Kernel, template_set: TemplateSet) -> Optional[TemplateSet]:
        return self.transform(kernel, template_set)


def _offset_of(candidate: Expr, rank: int) -> Optional[tuple]:
    """Decompose a candidate index expression as an offset from an output var."""
    variables = tuple(f"v{d}" for d in range(rank))
    decomposition = collect_affine(simplify(candidate), variables)
    if decomposition is None:
        return None
    coeffs, rest = decomposition
    nonzero = [(name, c) for name, c in coeffs.items() if c != 0]
    rest = simplify(rest)
    if len(nonzero) != 1 or not isinstance(rest, Const):
        return None
    name, coeff = nonzero[0]
    if coeff != 1:
        return None
    return name, int(rest.value)


def _filter_holes(template: ArrayTemplate, keep: Callable[[Expr], bool]) -> Optional[ArrayTemplate]:
    new_holes: List[HoleSpace] = []
    for hole_space in template.holes:
        kept = [c for c in hole_space.candidates if keep(c)]
        if not kept:
            return None
        new_holes.append(HoleSpace(hole=hole_space.hole, candidates=kept))
    return ArrayTemplate(
        array=template.array,
        rank=template.rank,
        template=template.template,
        holes=new_holes,
        bounds=template.bounds,
        observation_count=template.observation_count,
    )


def _pattern_strategy(max_offset: int, cross_only: bool):
    def transform(kernel: ir.Kernel, template_set: TemplateSet) -> Optional[TemplateSet]:
        new_arrays: List[ArrayTemplate] = []
        for template in template_set.arrays:

            def keep(candidate: Expr, rank=template.rank) -> bool:
                decomposed = _offset_of(candidate, rank)
                if decomposed is None:
                    # Keep integer-input and constant candidates: patterns only
                    # restrict the offsets relative to the output point.
                    return True
                _, offset = decomposed
                return abs(offset) <= max_offset

            filtered = _filter_holes(template, keep)
            if filtered is None:
                return None
            new_arrays.append(filtered)
        return TemplateSet(
            kernel=template_set.kernel,
            runs=template_set.runs,
            arrays=new_arrays,
            scalar_equalities=template_set.scalar_equalities,
            write_sites=template_set.write_sites,
        )

    return transform


def _default(kernel: ir.Kernel, template_set: TemplateSet) -> Optional[TemplateSet]:
    return template_set


def _perfect_nest(kernel: ir.Kernel, template_set: TemplateSet) -> Optional[TemplateSet]:
    if not is_perfect_nest(kernel):
        return None
    return TemplateSet(
        kernel=template_set.kernel,
        runs=template_set.runs,
        arrays=template_set.arrays,
        scalar_equalities=[],
        write_sites=template_set.write_sites,
    )


STRATEGIES: List[Strategy] = [
    Strategy("perfect_nest", _perfect_nest),
    Strategy("cross", _pattern_strategy(max_offset=2, cross_only=True)),
    Strategy("box", _pattern_strategy(max_offset=1, cross_only=False)),
    Strategy("default", _default),
]
